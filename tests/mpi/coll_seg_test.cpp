// Tests for the SCI-native collective engine (src/mpi/coll/): segment-routed
// algorithms, size/override-driven selection, sub-communicators, non-
// contiguous datatypes flattened straight into the collective segments,
// p2p-fallback resilience and scimpi-check cleanliness.
#include <gtest/gtest.h>

#include <cstring>
#include <numeric>
#include <vector>

#include "check/checker.hpp"
#include "mpi/comm.hpp"

namespace scimpi::mpi {
namespace {

TEST(CollSeg, BcastEverySizeAndRootThroughSegments) {
    ClusterOptions opt;
    opt.nodes = 8;
    opt.collect_stats = true;
    Cluster c(opt);
    // 512 B rides p2p (below coll_seg_min), 4 KiB takes the flat fan-out,
    // 16 KiB the binomial tree, 256 KiB scatter + ring allgather; every
    // root, so parent/child maps (and ring orders) rotate.
    const std::vector<std::size_t> sizes = {512, 4_KiB, 16_KiB, 256_KiB};
    c.run([&](Comm& comm) {
        for (const std::size_t bytes : sizes) {
            for (int root = 0; root < comm.size(); ++root) {
                std::vector<double> data(bytes / sizeof(double), -1.0);
                if (comm.rank() == root)
                    std::iota(data.begin(), data.end(), root * 1000.0);
                ASSERT_TRUE(comm.bcast(data.data(), static_cast<int>(data.size()),
                                       Datatype::float64(), root));
                EXPECT_EQ(data.front(), root * 1000.0);
                EXPECT_EQ(data.back(),
                          root * 1000.0 + static_cast<double>(data.size()) - 1.0);
            }
        }
    });
    const obs::RunReport r = c.stats_report();
    EXPECT_GT(r.counter("coll.bcast.flat"), 0u);
    EXPECT_GT(r.counter("coll.bcast.binomial"), 0u);
    EXPECT_GT(r.counter("coll.bcast.scatter_ag"), 0u);
    EXPECT_GT(r.counter("coll.bcast.p2p"), 0u);
    EXPECT_GT(r.counter("coll.seg_bytes"), 0u);
    EXPECT_EQ(r.counter("coll.fallbacks"), 0u);
}

TEST(CollSeg, SplitSubCommunicatorsRunSegmentCollectives) {
    ClusterOptions opt;
    opt.nodes = 6;
    opt.coll = "seg";  // ignore size thresholds: route everything possible
    Cluster c(opt);
    c.run([](Comm& comm) {
        // Two disjoint sub-communicators of 3; each gets its own segment set
        // (fresh context id), so streams cannot cross.
        Comm half = comm.split(comm.rank() % 2, comm.rank());
        std::vector<double> data(8_KiB / 8);
        const int root = 1;
        if (half.rank() == root)
            std::iota(data.begin(), data.end(), 100.0 * (comm.rank() % 2));
        ASSERT_TRUE(half.bcast(data.data(), static_cast<int>(data.size()),
                               Datatype::float64(), root));
        EXPECT_EQ(data.front(), 100.0 * (comm.rank() % 2));

        double in = half.rank() + 1.0;
        double out = 0.0;
        ASSERT_TRUE(half.allreduce_sum(&in, &out, 1));
        EXPECT_DOUBLE_EQ(out, 1.0 + 2.0 + 3.0);
        half.barrier();

        // Size-1 communicators short-circuit every operation.
        Comm solo = comm.split(comm.rank(), 0);
        ASSERT_EQ(solo.size(), 1);
        solo.barrier();
        double v = 42.0;
        double w = 0.0;
        ASSERT_TRUE(solo.bcast(&v, 1, Datatype::float64(), 0));
        ASSERT_TRUE(solo.allreduce_sum(&v, &w, 1));
        EXPECT_DOUBLE_EQ(w, 42.0);
        comm.barrier();
    });
}

TEST(CollSeg, NonContiguousBcastFlattensIntoSegments) {
    ClusterOptions opt;
    opt.nodes = 4;
    opt.coll = "seg";
    opt.collect_stats = true;
    Cluster c(opt);
    // 1024 blocks of 4 doubles every 8: 32 KiB of payload in a 64 KiB
    // footprint. Leaf-major order is canonical, so the publish side must
    // gather the blocks straight into the remote segment (ff path).
    constexpr int kBlocks = 1024;
    constexpr int kStride = 8;
    constexpr int kBlock = 4;
    c.run([&](Comm& comm) {
        const Datatype vec =
            Datatype::vector(kBlocks, kBlock, kStride, Datatype::float64());
        std::vector<double> field(kBlocks * kStride, -1.0);
        if (comm.rank() == 0) {
            for (int b = 0; b < kBlocks; ++b)
                for (int i = 0; i < kBlock; ++i)
                    field[static_cast<std::size_t>(b * kStride + i)] = b * 10.0 + i;
        }
        ASSERT_TRUE(comm.bcast(field.data(), 1, vec, 0));
        for (int b = 0; b < kBlocks; ++b) {
            for (int i = 0; i < kStride; ++i) {
                const double v = field[static_cast<std::size_t>(b * kStride + i)];
                if (i < kBlock)
                    EXPECT_EQ(v, b * 10.0 + i);
                else
                    EXPECT_EQ(v, -1.0) << "gap bytes must stay untouched";
            }
        }
    });
    const obs::RunReport r = c.stats_report();
    EXPECT_GT(r.counter("coll.ff_seg_packs"), 0u);
    EXPECT_EQ(r.counter("coll.generic_seg_packs"), 0u);
}

TEST(CollSeg, TypedAllgatherUnpacksFromOwnSegment) {
    ClusterOptions opt;
    opt.nodes = 4;
    opt.coll = "seg";
    opt.collect_stats = true;
    Cluster c(opt);
    // Each rank contributes one strided instance; block i of the result is
    // written by rank i's remote flatten and unpacked out of the local
    // segment — the extent gaps must stay untouched.
    constexpr int kBlocks = 256;
    constexpr int kStride = 8;
    constexpr int kBlock = 4;
    c.run([&](Comm& comm) {
        Datatype vec =
            Datatype::vector(kBlocks, kBlock, kStride, Datatype::float64());
        vec.commit(c.options().cfg);
        const std::size_t ext_elems = vec.extent() / sizeof(double);
        std::vector<double> mine(ext_elems, -1.0);
        for (int b = 0; b < kBlocks; ++b)
            for (int i = 0; i < kBlock; ++i)
                mine[static_cast<std::size_t>(b * kStride + i)] =
                    comm.rank() * 1e6 + b * 10.0 + i;
        std::vector<double> all(
            static_cast<std::size_t>(comm.size()) * ext_elems, -1.0);
        ASSERT_TRUE(comm.allgather(mine.data(), 1, vec, all.data()));
        for (int r = 0; r < comm.size(); ++r) {
            const double* blk = all.data() + static_cast<std::size_t>(r) * ext_elems;
            for (int b = 0; b < kBlocks; ++b)
                for (int i = 0; i < kBlock; ++i)
                    EXPECT_EQ(blk[b * kStride + i], r * 1e6 + b * 10.0 + i);
        }
    });
    EXPECT_GT(c.stats_report().counter("coll.ff_seg_packs"), 0u);
}

/// The alltoall ordering fix: the pairwise schedule is deterministic, so the
/// segment and p2p paths must produce byte-identical outputs, and repeated
/// runs must reproduce themselves exactly.
TEST(CollSeg, AlltoallDeterministicAcrossPathsAndRuns) {
    constexpr int kNodes = 5;
    constexpr std::size_t kEach = 96_KiB;  // > chunk: multi-chunk streams
    auto run_once = [&](const std::string& coll) {
        ClusterOptions opt;
        opt.nodes = kNodes;
        opt.coll = coll;
        Cluster c(opt);
        std::vector<std::vector<std::byte>> outs(kNodes);
        c.run([&](Comm& comm) {
            std::vector<std::byte> in(kEach * kNodes);
            for (std::size_t i = 0; i < in.size(); ++i)
                in[i] = static_cast<std::byte>(
                    (static_cast<std::size_t>(comm.rank()) * 131 + i * 7) & 0xFF);
            std::vector<std::byte> out(kEach * kNodes);
            ASSERT_TRUE(comm.alltoall(in.data(), kEach, out.data()));
            outs[static_cast<std::size_t>(comm.rank())] = out;
        });
        return outs;
    };
    const auto seg1 = run_once("alltoall=pairwise");
    const auto seg2 = run_once("alltoall=pairwise");
    const auto p2p = run_once("p2p");
    for (int r = 0; r < kNodes; ++r) {
        EXPECT_EQ(seg1[static_cast<std::size_t>(r)], seg2[static_cast<std::size_t>(r)])
            << "segment path must be run-to-run deterministic (rank " << r << ")";
        EXPECT_EQ(seg1[static_cast<std::size_t>(r)], p2p[static_cast<std::size_t>(r)])
            << "segment and p2p paths must agree byte-for-byte (rank " << r << ")";
    }
}

TEST(CollSeg, AllreduceSmallFastPathAndLargeRing) {
    ClusterOptions opt;
    opt.nodes = 4;
    opt.collect_stats = true;
    Cluster c(opt);
    c.run([](Comm& comm) {
        // 16 doubles = 128 B <= coll_small_allreduce: pinned rdouble path.
        std::vector<double> sin(16, comm.rank() + 1.0);
        std::vector<double> sout(16, 0.0);
        ASSERT_TRUE(comm.allreduce_sum(sin.data(), sout.data(), 16));
        for (const double v : sout) EXPECT_DOUBLE_EQ(v, 1.0 + 2.0 + 3.0 + 4.0);
        // 256 KiB >= coll_ring_min with 4 ranks: bandwidth-optimal ring.
        const int n = static_cast<int>(256_KiB / sizeof(double));
        std::vector<double> lin(static_cast<std::size_t>(n));
        for (int i = 0; i < n; ++i)
            lin[static_cast<std::size_t>(i)] = comm.rank() + i * 0.5;
        std::vector<double> lout(static_cast<std::size_t>(n), 0.0);
        ASSERT_TRUE(comm.allreduce_sum(lin.data(), lout.data(), n));
        for (int i = 0; i < n; i += 997)
            EXPECT_DOUBLE_EQ(lout[static_cast<std::size_t>(i)],
                             (0.0 + 1.0 + 2.0 + 3.0) + 4 * (i * 0.5));
    });
    const obs::RunReport r = c.stats_report();
    EXPECT_GT(r.counter("coll.small_allreduce"), 0u);
    EXPECT_GT(r.counter("coll.allreduce.rdouble"), 0u);
    EXPECT_GT(r.counter("coll.allreduce.ring"), 0u);
}

TEST(CollSeg, OverridesSteerSelection) {
    ClusterOptions opt;
    opt.nodes = 4;
    opt.collect_stats = true;
    opt.coll = "bcast=p2p,allreduce=ring";
    Cluster c(opt);
    c.run([](Comm& comm) {
        std::vector<double> data(64_KiB / 8, 0.0);
        if (comm.rank() == 0) data.assign(data.size(), 7.0);
        ASSERT_TRUE(comm.bcast(data.data(), static_cast<int>(data.size()),
                               Datatype::float64(), 0));
        EXPECT_EQ(data.back(), 7.0);
        double in = 1.0;
        double out = 0.0;
        ASSERT_TRUE(comm.allreduce_sum(&in, &out, 1));
        EXPECT_DOUBLE_EQ(out, 4.0);
    });
    const obs::RunReport r = c.stats_report();
    EXPECT_GT(r.counter("coll.bcast.p2p"), 0u);
    EXPECT_EQ(r.counter("coll.bcast.flat") + r.counter("coll.bcast.binomial"), 0u);
    EXPECT_GT(r.counter("coll.allreduce.ring"), 0u);
}

TEST(CollSeg, MalformedOverrideSpecPanics) {
    ClusterOptions opt;
    opt.nodes = 2;
    opt.coll = "bcast=warpspeed";
    EXPECT_THROW({ Cluster c(opt); }, Panic);
}

/// A link that dies mid-broadcast for longer than the retry budget forces
/// the writer onto the p2p fallback; the collective still completes with
/// intact data once the protocol-level retries ride out the outage.
TEST(CollSeg, LinkFlapMidBcastDegradesToP2PWithoutHanging) {
    ClusterOptions opt;
    opt.nodes = 2;
    opt.collect_stats = true;
    // Down for 30 ms at t=100us: longer than the 20 ms segment retry budget
    // (forcing the fallback) but short enough that the fallback's own p2p
    // retries recover.
    opt.faults.flap(100'000, 0, 30'000'000);
    Status st;
    double tail = -1.0;
    Cluster c(opt);
    c.run([&](Comm& comm) {
        std::vector<double> data(4_MiB / 8);
        if (comm.rank() == 0) std::iota(data.begin(), data.end(), 1.0);
        st = comm.bcast(data.data(), static_cast<int>(data.size()),
                        Datatype::float64(), 0);
        if (comm.rank() == 1) tail = data.back();
    });
    EXPECT_TRUE(st) << st.to_string();
    EXPECT_EQ(tail, static_cast<double>(4_MiB / 8));
    const obs::RunReport r = c.stats_report();
    EXPECT_GE(r.counter("coll.fallbacks"), 1u);
    EXPECT_GE(r.counter("coll.fallback_recvs"), 1u);
    EXPECT_GE(r.counter("coll.degraded_edges"), 1u);
}

/// scimpi-check sees every store into the watched collective data segments;
/// the ready/ack flag protocol must therefore carry happens-before edges
/// that make slot and parity reuse race-free across repeated collectives.
TEST(CollSeg, CheckedSegmentCollectivesReportNoViolations) {
    ClusterOptions opt;
    opt.nodes = 4;
    opt.procs_per_node = 2;  // loopback segment accesses are checked too
    opt.coll = "seg";
    opt.check = true;
    Cluster c(opt);
    c.run([](Comm& comm) {
        std::vector<double> data(128_KiB / 8);
        std::vector<double> sum(data.size());
        std::vector<std::byte> a2a_in(16_KiB * static_cast<std::size_t>(comm.size()));
        std::vector<std::byte> a2a_out(a2a_in.size());
        // Two rounds: the second reuses every stream's slots and parities,
        // which is exactly where a missing ack edge would race.
        for (int round = 0; round < 2; ++round) {
            if (comm.rank() == round)
                std::iota(data.begin(), data.end(), round * 1.0);
            ASSERT_TRUE(comm.bcast(data.data(), static_cast<int>(data.size()),
                                   Datatype::float64(), round));
            ASSERT_TRUE(comm.allreduce_sum(data.data(), sum.data(),
                                           static_cast<int>(data.size())));
            ASSERT_TRUE(comm.alltoall(a2a_in.data(), 16_KiB, a2a_out.data()));
            comm.barrier();
        }
    });
    ASSERT_NE(c.checker(), nullptr);
    EXPECT_TRUE(c.checker()->violations().empty())
        << c.checker()->violations().size() << " violation(s)";
}

}  // namespace
}  // namespace scimpi::mpi
