#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "mpi/comm.hpp"

namespace scimpi::mpi {
namespace {

TEST(Coll, BarrierSynchronizesAllRanks) {
    ClusterOptions opt;
    opt.nodes = 8;
    Cluster c(opt);
    std::vector<double> release(8, 0.0);
    c.run([&](Comm& comm) {
        comm.proc().delay((comm.rank() + 1) * 50'000);  // staggered arrival
        comm.barrier();
        release[static_cast<std::size_t>(comm.rank())] = comm.wtime();
    });
    const double last_arrival = 8 * 50'000 * 1e-9;
    for (const double t : release) EXPECT_GE(t, last_arrival);
}

TEST(Coll, BarrierManyRounds) {
    ClusterOptions opt;
    opt.nodes = 5;  // non-power-of-two
    Cluster c(opt);
    c.run([](Comm& comm) {
        for (int i = 0; i < 10; ++i) comm.barrier();
    });
    SUCCEED();
}

TEST(Coll, BcastDeliversFromEveryRoot) {
    ClusterOptions opt;
    opt.nodes = 4;
    opt.procs_per_node = 2;
    Cluster c(opt);
    c.run([](Comm& comm) {
        for (int root = 0; root < comm.size(); ++root) {
            std::vector<double> data(256);
            if (comm.rank() == root)
                std::iota(data.begin(), data.end(), root * 1000.0);
            ASSERT_TRUE(comm.bcast(data.data(), 256, Datatype::float64(), root));
            EXPECT_EQ(data[0], root * 1000.0);
            EXPECT_EQ(data[255], root * 1000.0 + 255);
            comm.barrier();
        }
    });
}

TEST(Coll, BcastLargeMessageUsesRendezvous) {
    ClusterOptions opt;
    opt.nodes = 4;
    Cluster c(opt);
    c.run([](Comm& comm) {
        std::vector<double> data(256_KiB / 8);
        if (comm.rank() == 0) std::iota(data.begin(), data.end(), 1.0);
        ASSERT_TRUE(comm.bcast(data.data(), static_cast<int>(data.size()),
                               Datatype::float64(), 0));
        EXPECT_EQ(data.front(), 1.0);
        EXPECT_EQ(data.back(), static_cast<double>(data.size()));
    });
}

TEST(Coll, ReduceSumAtRoot) {
    ClusterOptions opt;
    opt.nodes = 6;
    Cluster c(opt);
    c.run([](Comm& comm) {
        std::vector<double> in(32, comm.rank() + 1.0);
        std::vector<double> out(32, -1.0);
        ASSERT_TRUE(comm.reduce_sum(in.data(), out.data(), 32, 2));
        if (comm.rank() == 2) {
            const double expect = 1 + 2 + 3 + 4 + 5 + 6;
            for (const double v : out) EXPECT_DOUBLE_EQ(v, expect);
        }
    });
}

TEST(Coll, AllreduceSumEverywhere) {
    ClusterOptions opt;
    opt.nodes = 7;
    Cluster c(opt);
    c.run([](Comm& comm) {
        double in = comm.rank() * 2.0;
        double out = -1.0;
        ASSERT_TRUE(comm.allreduce_sum(&in, &out, 1));
        EXPECT_DOUBLE_EQ(out, 2.0 * (0 + 1 + 2 + 3 + 4 + 5 + 6));
    });
}

TEST(Coll, AllgatherRing) {
    ClusterOptions opt;
    opt.nodes = 5;
    Cluster c(opt);
    c.run([](Comm& comm) {
        const std::uint64_t mine = 0xABCD0000u + static_cast<std::uint64_t>(comm.rank());
        std::vector<std::uint64_t> all(static_cast<std::size_t>(comm.size()), 0);
        ASSERT_TRUE(comm.allgather(&mine, sizeof mine, all.data()));
        for (int r = 0; r < comm.size(); ++r)
            EXPECT_EQ(all[static_cast<std::size_t>(r)],
                      0xABCD0000u + static_cast<std::uint64_t>(r));
    });
}

TEST(Coll, SingleRankCollectivesAreNoops) {
    ClusterOptions opt;
    opt.nodes = 1;
    Cluster c(opt);
    c.run([](Comm& comm) {
        comm.barrier();
        double v = 3.0, out = 0.0;
        ASSERT_TRUE(comm.bcast(&v, 1, Datatype::float64(), 0));
        ASSERT_TRUE(comm.allreduce_sum(&v, &out, 1));
        EXPECT_DOUBLE_EQ(out, 3.0);
    });
}

TEST(Coll, MixedCollectivesAndP2PDoNotInterfere) {
    ClusterOptions opt;
    opt.nodes = 4;
    Cluster c(opt);
    c.run([](Comm& comm) {
        // A user ANY_TAG receive posted while barriers run underneath:
        // internal negative tags must not match it.
        const auto t = Datatype::int32();
        Request rx;
        if (comm.rank() == 0) rx = comm.irecv(nullptr, 0, t, ANY_SOURCE, ANY_TAG);
        comm.barrier();
        comm.barrier();
        if (comm.rank() == 1) {
            ASSERT_TRUE(comm.send(nullptr, 0, t, 0, 77));
        }
        if (comm.rank() == 0) {
            ASSERT_TRUE(comm.wait(rx));
            EXPECT_EQ(rx.complete(), true);
        }
        comm.barrier();
    });
}

}  // namespace
}  // namespace scimpi::mpi
