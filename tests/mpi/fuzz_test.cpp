// Protocol fuzzing: randomized workloads with a verification oracle.
//
// Each seed generates a deterministic schedule of matched operations whose
// sizes deliberately straddle the short/eager/rendezvous thresholds and
// whose datatypes vary between contiguous and strided. Payloads are seeded
// patterns so every byte can be verified at the receiver; window contents
// are checked against a shadow copy maintained by the oracle.
#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <vector>

#include "common/rng.hpp"
#include "mpi/comm.hpp"
#include "mpi/rma/window.hpp"

namespace scimpi::mpi {
namespace {

std::byte pattern(std::uint64_t seed, std::size_t i) {
    return static_cast<std::byte>((seed * 131 + i * 2654435761u) & 0xff);
}

void fill_pattern(std::span<std::byte> buf, std::uint64_t seed) {
    for (std::size_t i = 0; i < buf.size(); ++i) buf[i] = pattern(seed, i);
}

bool check_pattern(std::span<const std::byte> buf, std::uint64_t seed) {
    for (std::size_t i = 0; i < buf.size(); ++i)
        if (buf[i] != pattern(seed, i)) return false;
    return true;
}

// ---------------------------------------------------------------------------
// Two-sided fuzz: a random schedule of (src, dst, size) messages.
// ---------------------------------------------------------------------------

struct MsgPlan {
    int src, dst, tag;
    std::size_t bytes;
    std::uint64_t payload_seed;
    bool strided;  // send/recv use vector datatypes
};

std::vector<MsgPlan> make_plan(std::uint64_t seed, int ranks, int n) {
    Rng rng(seed);
    std::vector<MsgPlan> plan;
    for (int i = 0; i < n; ++i) {
        MsgPlan m;
        m.src = static_cast<int>(rng.below(static_cast<std::uint64_t>(ranks)));
        do {
            m.dst = static_cast<int>(rng.below(static_cast<std::uint64_t>(ranks)));
        } while (m.dst == m.src);
        m.tag = i;  // unique: ordering between pairs is unconstrained
        // Sizes around the protocol thresholds (128 B short, 16 KiB eager).
        static constexpr std::size_t sizes[] = {0,      8,      127,    128,
                                                129,    4096,   16384,  16392,
                                                65536,  131072, 200000};
        m.bytes = sizes[rng.below(std::size(sizes))];
        m.bytes = (m.bytes / 8) * 8;  // whole doubles for strided mode
        m.payload_seed = rng.next();
        m.strided = rng.chance(0.4) && m.bytes >= 64;
        plan.push_back(m);
    }
    return plan;
}

class P2PFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(P2PFuzz, RandomScheduleDeliversEveryByte) {
    constexpr int kRanks = 4;
    constexpr int kMsgs = 60;
    const auto plan = make_plan(GetParam(), kRanks, kMsgs);

    ClusterOptions opt;
    opt.nodes = 2;
    opt.procs_per_node = 2;  // mixed intra/inter-node traffic
    int failures = 0;
    Cluster c(opt);
    c.run([&](Comm& comm) {
        // Post all receives first (tags are unique), then issue sends.
        struct Pending {
            Request req;
            std::vector<std::byte> buf;
            const MsgPlan* m;
        };
        std::vector<Pending> recvs;
        std::vector<std::vector<std::byte>> send_bufs;
        std::vector<Request> sends;

        for (const MsgPlan& m : plan) {
            if (m.dst == comm.rank()) {
                Pending p;
                p.m = &m;
                if (m.strided) {
                    // Receive into a strided view: data bytes at even slots.
                    p.buf.assign(m.bytes * 2, std::byte{0});
                    auto t = Datatype::vector(static_cast<int>(m.bytes / 8), 1, 2,
                                              Datatype::float64());
                    p.req = comm.irecv(p.buf.data(), 1, t, m.src, m.tag);
                } else {
                    p.buf.assign(m.bytes, std::byte{0});
                    p.req = comm.irecv(p.buf.data(), static_cast<int>(m.bytes),
                                       Datatype::byte_(), m.src, m.tag);
                }
                recvs.push_back(std::move(p));
            }
        }
        comm.barrier();
        for (const MsgPlan& m : plan) {
            if (m.src != comm.rank()) continue;
            if (m.strided) {
                auto& buf = send_bufs.emplace_back(m.bytes * 2);
                // Pattern lives in the even slots (the strided data bytes).
                for (std::size_t i = 0; i < m.bytes / 8; ++i)
                    for (std::size_t b = 0; b < 8; ++b)
                        buf[i * 16 + b] = pattern(m.payload_seed, i * 8 + b);
                auto t = Datatype::vector(static_cast<int>(m.bytes / 8), 1, 2,
                                          Datatype::float64());
                sends.push_back(comm.isend(buf.data(), 1, t, m.dst, m.tag));
            } else {
                auto& buf = send_bufs.emplace_back(m.bytes);
                fill_pattern(buf, m.payload_seed);
                sends.push_back(comm.isend(buf.data(), static_cast<int>(m.bytes),
                                           Datatype::byte_(), m.dst, m.tag));
            }
        }
        ASSERT_TRUE(comm.wait_all(sends));
        for (auto& p : recvs) {
            ASSERT_TRUE(comm.wait(p.req));
            if (p.m->strided) {
                for (std::size_t i = 0; i < p.m->bytes / 8 && failures < 3; ++i)
                    for (std::size_t b = 0; b < 8; ++b)
                        if (p.buf[i * 16 + b] != pattern(p.m->payload_seed, i * 8 + b))
                            ++failures;
            } else {
                if (!check_pattern(p.buf, p.m->payload_seed)) ++failures;
            }
        }
    });
    EXPECT_EQ(failures, 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, P2PFuzz, ::testing::Range<std::uint64_t>(1, 13));

// ---------------------------------------------------------------------------
// One-sided fuzz: random puts/gets/accumulates against a shadow oracle.
// ---------------------------------------------------------------------------

class RmaFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RmaFuzz, EpochedRandomOpsMatchShadow) {
    constexpr int kRanks = 4;
    constexpr std::size_t kWin = 8_KiB;  // doubles only
    constexpr int kEpochs = 6;
    constexpr int kOpsPerEpoch = 10;

    // Oracle: replay the same plan against plain arrays.
    struct Op {
        int origin, target;
        std::size_t slot, count;
        int kind;  // 0 put, 1 get, 2 acc-sum
        double value;
    };
    Rng rng(GetParam() * 7919);
    std::vector<std::vector<Op>> epochs(kEpochs);
    for (int e = 0; e < kEpochs; ++e)
        for (int i = 0; i < kOpsPerEpoch; ++i) {
            Op op;
            op.origin = static_cast<int>(rng.below(kRanks));
            do {
                op.target = static_cast<int>(rng.below(kRanks));
            } while (op.target == op.origin);
            op.count = 1 + rng.below(16);
            op.slot = rng.below(kWin / 8 - op.count);
            // One op kind per (origin, epoch): direct puts and emulated
            // accumulates from the same origin to the same location within
            // one epoch would be a conflicting access (illegal in MPI and
            // order-undefined here).
            op.kind = (op.origin + e) % 3;
            op.value = static_cast<double>(rng.below(1000));
            // At most one writer per (target, slot-range) per epoch keeps
            // the oracle well-defined (MPI forbids conflicting accesses in
            // one epoch anyway); enforce by spacing writers over slots.
            op.slot = (op.slot / 32) * 32 + static_cast<std::size_t>(op.origin) * 4;
            op.count = std::min<std::size_t>(op.count, 4);
            epochs[static_cast<std::size_t>(e)].push_back(op);
        }

    // Shadow state.
    std::vector<std::vector<double>> shadow(
        kRanks, std::vector<double>(kWin / 8, 0.0));
    for (const auto& ep : epochs)
        for (const Op& op : ep) {
            auto& tgt = shadow[static_cast<std::size_t>(op.target)];
            for (std::size_t i = 0; i < op.count; ++i) {
                if (op.kind == 0) tgt[op.slot + i] = op.value;
                if (op.kind == 2) tgt[op.slot + i] += op.value;
                // gets do not modify state
            }
        }

    ClusterOptions opt;
    opt.nodes = kRanks;
    int mismatches = 0;
    Cluster c(opt);
    c.run([&](Comm& comm) {
        auto mem = comm.alloc_mem(kWin);
        std::memset(mem.value().data(), 0, kWin);
        auto win = comm.win_create(mem.value().data(), kWin);
        std::vector<double> scratch(kWin / 8);
        win->fence();
        for (const auto& ep : epochs) {
            for (const Op& op : ep) {
                if (op.origin != comm.rank()) continue;
                std::vector<double> vals(op.count, op.value);
                switch (op.kind) {
                    case 0:
                        ASSERT_TRUE(win->put(vals.data(), static_cast<int>(op.count),
                                             Datatype::float64(), op.target,
                                             op.slot * 8));
                        break;
                    case 1:
                        ASSERT_TRUE(win->get(scratch.data(),
                                             static_cast<int>(op.count),
                                             Datatype::float64(), op.target,
                                             op.slot * 8));
                        break;
                    case 2:
                        ASSERT_TRUE(win->accumulate(
                            vals.data(), static_cast<int>(op.count),
                            Datatype::float64(), op.target, op.slot * 8,
                            Win::ReduceOp::sum));
                        break;
                }
            }
            win->fence();
        }
        // Compare the local window with the shadow.
        const auto* d = reinterpret_cast<const double*>(win->local().data());
        const auto& expect = shadow[static_cast<std::size_t>(comm.rank())];
        for (std::size_t i = 0; i < expect.size(); ++i)
            if (d[i] != expect[i] && ++mismatches < 4)
                ADD_FAILURE() << "rank " << comm.rank() << " slot " << i << ": "
                              << d[i] << " != " << expect[i];
        win->fence();
    });
    EXPECT_EQ(mismatches, 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RmaFuzz, ::testing::Range<std::uint64_t>(1, 9));

}  // namespace
}  // namespace scimpi::mpi
