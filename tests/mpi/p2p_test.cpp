#include <gtest/gtest.h>

#include <cstring>
#include <numeric>
#include <vector>

#include "mpi/comm.hpp"

namespace scimpi::mpi {
namespace {

std::vector<double> iota_doubles(std::size_t n, double start = 0.0) {
    std::vector<double> v(n);
    std::iota(v.begin(), v.end(), start);
    return v;
}

ClusterOptions two_nodes() {
    ClusterOptions opt;
    opt.nodes = 2;
    return opt;
}

TEST(P2P, ShortMessageRoundTrip) {
    Cluster c(two_nodes());
    c.run([](Comm& comm) {
        const auto t = Datatype::int32();
        if (comm.rank() == 0) {
            const int v = 4711;
            ASSERT_TRUE(comm.send(&v, 1, t, 1, 5));
        } else {
            int v = 0;
            const RecvResult r = comm.recv(&v, 1, t, 0, 5);
            ASSERT_TRUE(r.status);
            EXPECT_EQ(v, 4711);
            EXPECT_EQ(r.source, 0);
            EXPECT_EQ(r.tag, 5);
            EXPECT_EQ(r.bytes, 4u);
        }
    });
    // The user message plus the finalize-barrier token are both short sends.
    EXPECT_GE(c.rank_state(0).stats().sends_short, 1u);
    EXPECT_EQ(c.rank_state(0).stats().sends_eager, 0u);
    EXPECT_EQ(c.rank_state(0).stats().sends_rndv, 0u);
}

TEST(P2P, ShortMessageLatencyIsMicroseconds) {
    Cluster c(two_nodes());
    double latency_us = 0.0;
    c.run([&](Comm& comm) {
        const auto t = Datatype::byte_();
        std::byte b{1};
        // Ping-pong of 16 one-byte messages.
        const double t0 = comm.wtime();
        for (int i = 0; i < 16; ++i) {
            if (comm.rank() == 0) {
                ASSERT_TRUE(comm.send(&b, 1, t, 1, 1));
                comm.recv(&b, 1, t, 1, 2);
            } else {
                comm.recv(&b, 1, t, 0, 1);
                ASSERT_TRUE(comm.send(&b, 1, t, 0, 2));
            }
        }
        if (comm.rank() == 0) latency_us = (comm.wtime() - t0) / 32 * 1e6;
    });
    EXPECT_GT(latency_us, 1.0);
    EXPECT_LT(latency_us, 15.0);  // SCI-MPICH class small-message latency
}

TEST(P2P, EagerMessageRoundTrip) {
    Cluster c(two_nodes());
    c.run([](Comm& comm) {
        const auto data = iota_doubles(512);  // 4 KiB: eager range
        if (comm.rank() == 0) {
            ASSERT_TRUE(comm.send(data.data(), 512, Datatype::float64(), 1, 0));
        } else {
            std::vector<double> out(512);
            ASSERT_TRUE(comm.recv(out.data(), 512, Datatype::float64(), 0, 0).status);
            EXPECT_EQ(out, data);
        }
    });
    EXPECT_EQ(c.rank_state(0).stats().sends_eager, 1u);
}

TEST(P2P, RendezvousLargeMessageRoundTrip) {
    Cluster c(two_nodes());
    c.run([](Comm& comm) {
        const auto data = iota_doubles(128_KiB / 8);  // 128 KiB: 2 chunks
        if (comm.rank() == 0) {
            ASSERT_TRUE(comm.send(data.data(), static_cast<int>(data.size()),
                                  Datatype::float64(), 1, 0));
        } else {
            std::vector<double> out(data.size());
            ASSERT_TRUE(comm.recv(out.data(), static_cast<int>(out.size()),
                                  Datatype::float64(), 0, 0)
                            .status);
            EXPECT_EQ(out, data);
        }
    });
    EXPECT_EQ(c.rank_state(0).stats().sends_rndv, 1u);
}

TEST(P2P, RendezvousMultiChunkUsesRingTwice) {
    Cluster c(two_nodes());
    c.run([](Comm& comm) {
        const auto data = iota_doubles(1_MiB / 8);  // 16 chunks of 64 KiB
        if (comm.rank() == 0) {
            ASSERT_TRUE(comm.send(data.data(), static_cast<int>(data.size()),
                                  Datatype::float64(), 1, 0));
        } else {
            std::vector<double> out(data.size());
            ASSERT_TRUE(comm.recv(out.data(), static_cast<int>(out.size()),
                                  Datatype::float64(), 0, 0)
                            .status);
            EXPECT_EQ(out, data);
        }
    });
    // The ring memory must be fully released afterwards.
    EXPECT_EQ(c.memory(1).bytes_in_use(), 0u);
}

TEST(P2P, NonContiguousVectorSendViaFF) {
    Cluster c(two_nodes());
    c.run([](Comm& comm) {
        // 256 KiB payload in 1 KiB blocks with equal gaps (the paper's
        // noncontig micro-benchmark layout).
        const int blocks = 256;
        const int elems = 128;  // doubles per block
        auto t = Datatype::vector(blocks, elems, 2 * elems, Datatype::float64());
        const std::size_t span = static_cast<std::size_t>(t.extent()) / 8 + 256;
        if (comm.rank() == 0) {
            auto buf = iota_doubles(span);
            ASSERT_TRUE(comm.send(buf.data(), 1, t, 1, 0));
        } else {
            std::vector<double> out(span, -1.0);
            ASSERT_TRUE(comm.recv(out.data(), 1, t, 0, 0).status);
            // Block i starts at element i*256 and holds 128 ascending values.
            for (int b = 0; b < blocks; ++b)
                for (int e = 0; e < elems; ++e) {
                    const std::size_t idx =
                        static_cast<std::size_t>(b) * 256 + static_cast<std::size_t>(e);
                    ASSERT_EQ(out[idx], static_cast<double>(idx)) << idx;
                }
            // Gap elements untouched.
            EXPECT_EQ(out[128], -1.0);
        }
    });
    EXPECT_GT(c.rank_state(0).stats().ff_packs, 0u);
    EXPECT_EQ(c.rank_state(0).stats().generic_packs, 0u);
}

TEST(P2P, NonContiguousFallsBackToGenericWhenFFDisabled) {
    ClusterOptions opt = two_nodes();
    opt.cfg.use_direct_pack_ff = false;
    Cluster c(opt);
    c.run([](Comm& comm) {
        auto t = Datatype::vector(64, 16, 32, Datatype::float64());
        const std::size_t span = static_cast<std::size_t>(t.extent()) / 8;
        if (comm.rank() == 0) {
            auto buf = iota_doubles(span);
            ASSERT_TRUE(comm.send(buf.data(), 1, t, 1, 0));
        } else {
            std::vector<double> out(span, -1.0);
            ASSERT_TRUE(comm.recv(out.data(), 1, t, 0, 0).status);
            EXPECT_EQ(out[0], 0.0);
            EXPECT_EQ(out[1], 1.0);
        }
    });
    EXPECT_EQ(c.rank_state(0).stats().ff_packs, 0u);
    EXPECT_GT(c.rank_state(0).stats().generic_packs, 0u);
}

TEST(P2P, MixedTypeSignatures) {
    // Send as strided vector, receive as contiguous doubles: canonical
    // order on the wire makes this work.
    Cluster c(two_nodes());
    c.run([](Comm& comm) {
        auto vec = Datatype::vector(8, 1, 2, Datatype::float64());
        if (comm.rank() == 0) {
            auto buf = iota_doubles(16);
            ASSERT_TRUE(comm.send(buf.data(), 1, vec, 1, 0));
        } else {
            std::vector<double> out(8, -1.0);
            ASSERT_TRUE(comm.recv(out.data(), 8, Datatype::float64(), 0, 0).status);
            // Strided elements 0,2,4,... arrive densely.
            for (int i = 0; i < 8; ++i) EXPECT_EQ(out[static_cast<std::size_t>(i)], 2.0 * i);
        }
    });
}

TEST(P2P, MessageOrderingPreservedPerPair) {
    Cluster c(two_nodes());
    c.run([](Comm& comm) {
        const auto t = Datatype::int32();
        if (comm.rank() == 0) {
            for (int i = 0; i < 32; ++i) ASSERT_TRUE(comm.send(&i, 1, t, 1, 7));
        } else {
            for (int i = 0; i < 32; ++i) {
                int v = -1;
                ASSERT_TRUE(comm.recv(&v, 1, t, 0, 7).status);
                EXPECT_EQ(v, i);
            }
        }
    });
}

TEST(P2P, TagSelectionOutOfOrder) {
    Cluster c(two_nodes());
    c.run([](Comm& comm) {
        const auto t = Datatype::int32();
        if (comm.rank() == 0) {
            const int a = 1, b = 2;
            ASSERT_TRUE(comm.send(&a, 1, t, 1, 10));
            ASSERT_TRUE(comm.send(&b, 1, t, 1, 20));
        } else {
            int v = 0;
            // Receive the tag-20 message first although it was sent second.
            ASSERT_TRUE(comm.recv(&v, 1, t, 0, 20).status);
            EXPECT_EQ(v, 2);
            ASSERT_TRUE(comm.recv(&v, 1, t, 0, 10).status);
            EXPECT_EQ(v, 1);
        }
    });
}

TEST(P2P, AnySourceAnyTag) {
    ClusterOptions opt;
    opt.nodes = 4;
    Cluster c(opt);
    c.run([](Comm& comm) {
        const auto t = Datatype::int32();
        if (comm.rank() == 0) {
            int sum = 0;
            for (int i = 0; i < 3; ++i) {
                int v = 0;
                const RecvResult r = comm.recv(&v, 1, t, ANY_SOURCE, ANY_TAG);
                ASSERT_TRUE(r.status);
                EXPECT_EQ(v, r.source * 100 + r.tag);
                sum += v;
            }
            EXPECT_EQ(sum, 1 * 100 + 1 + 2 * 100 + 2 + 3 * 100 + 3);
        } else {
            const int v = comm.rank() * 100 + comm.rank();
            ASSERT_TRUE(comm.send(&v, 1, t, 0, comm.rank()));
        }
    });
}

TEST(P2P, TruncationReportedOnTooSmallBuffer) {
    Cluster c(two_nodes());
    c.run([](Comm& comm) {
        const auto t = Datatype::float64();
        if (comm.rank() == 0) {
            const auto data = iota_doubles(64);
            ASSERT_TRUE(comm.send(data.data(), 64, t, 1, 0));
        } else {
            std::vector<double> out(16);
            const RecvResult r = comm.recv(out.data(), 16, t, 0, 0);
            EXPECT_EQ(r.status.code(), Errc::truncated);
            EXPECT_EQ(out[15], 15.0);  // prefix delivered
        }
    });
}

TEST(P2P, IsendIrecvOverlap) {
    Cluster c(two_nodes());
    c.run([](Comm& comm) {
        const auto t = Datatype::float64();
        auto mine = iota_doubles(8192, comm.rank() * 10000.0);
        std::vector<double> theirs(8192);
        const int peer = 1 - comm.rank();
        Request rx = comm.irecv(theirs.data(), 8192, t, peer, 3);
        Request tx = comm.isend(mine.data(), 8192, t, peer, 3);
        ASSERT_TRUE(comm.wait(tx));
        ASSERT_TRUE(comm.wait(rx));
        EXPECT_EQ(theirs[0], peer * 10000.0);
        EXPECT_EQ(theirs[8191], peer * 10000.0 + 8191);
    });
}

TEST(P2P, SendrecvExchanges) {
    ClusterOptions opt;
    opt.nodes = 4;
    Cluster c(opt);
    c.run([](Comm& comm) {
        const auto t = Datatype::int32();
        const int right = (comm.rank() + 1) % comm.size();
        const int left = (comm.rank() + comm.size() - 1) % comm.size();
        const int mine = comm.rank() * 7;
        int theirs = -1;
        ASSERT_TRUE(comm.sendrecv(&mine, 1, t, right, 2, &theirs, 1, t, left, 2));
        EXPECT_EQ(theirs, left * 7);
    });
}

TEST(P2P, IntraNodeSharedMemoryPath) {
    ClusterOptions opt;
    opt.nodes = 1;
    opt.procs_per_node = 2;
    Cluster c(opt);
    double elapsed_us = 0.0;
    c.run([&](Comm& comm) {
        const auto data = iota_doubles(64_KiB / 8);
        const double t0 = comm.wtime();
        if (comm.rank() == 0) {
            ASSERT_TRUE(comm.send(data.data(), static_cast<int>(data.size()),
                                  Datatype::float64(), 1, 0));
        } else {
            std::vector<double> out(data.size());
            ASSERT_TRUE(comm.recv(out.data(), static_cast<int>(out.size()),
                                  Datatype::float64(), 0, 0)
                            .status);
            EXPECT_EQ(out, data);
            elapsed_us = (comm.wtime() - t0) * 1e6;
        }
    });
    EXPECT_GT(elapsed_us, 10.0);  // not free
    EXPECT_LT(elapsed_us, 2000.0);
}

TEST(P2P, ManyPairsConcurrently) {
    ClusterOptions opt;
    opt.nodes = 8;
    Cluster c(opt);
    c.run([](Comm& comm) {
        const auto t = Datatype::float64();
        const int peer = comm.rank() ^ 1;
        auto mine = iota_doubles(4096, comm.rank() * 1.0);
        std::vector<double> theirs(4096);
        ASSERT_TRUE(comm.sendrecv(mine.data(), 4096, t, peer, 0, theirs.data(), 4096,
                                  t, peer, 0));
        EXPECT_EQ(theirs[100], peer * 1.0 + 100);
    });
}

TEST(P2P, EagerFlowControlUnderFlood) {
    ClusterOptions opt = two_nodes();
    opt.cfg.eager_slots = 2;
    Cluster c(opt);
    c.run([](Comm& comm) {
        const auto t = Datatype::float64();
        const int n = 64;  // far more than the 2 credits
        if (comm.rank() == 0) {
            const auto data = iota_doubles(1024);
            for (int i = 0; i < n; ++i)
                ASSERT_TRUE(comm.send(data.data(), 1024, t, 1, i));
        } else {
            std::vector<double> out(1024);
            for (int i = 0; i < n; ++i)
                ASSERT_TRUE(comm.recv(out.data(), 1024, t, 0, i).status);
        }
    });
}

TEST(P2P, ZeroByteMessage) {
    Cluster c(two_nodes());
    c.run([](Comm& comm) {
        if (comm.rank() == 0) {
            ASSERT_TRUE(comm.send(nullptr, 0, Datatype::byte_(), 1, 9));
        } else {
            const RecvResult r = comm.recv(nullptr, 0, Datatype::byte_(), 0, 9);
            ASSERT_TRUE(r.status);
            EXPECT_EQ(r.bytes, 0u);
        }
    });
}

TEST(P2P, UnmatchedRecvDeadlocksWithDiagnostic) {
    Cluster c(two_nodes());
    try {
        c.run([](Comm& comm) {
            if (comm.rank() == 1) {
                int v;
                comm.recv(&v, 1, Datatype::int32(), 0, 0);  // never sent
            }
        });
        FAIL() << "expected deadlock panic";
    } catch (const Panic& e) {
        EXPECT_NE(std::string(e.what()).find("deadlock"), std::string::npos);
    }
}

}  // namespace
}  // namespace scimpi::mpi
