#include "mpi/datatype/datatype.hpp"

#include <gtest/gtest.h>

#include <array>

namespace scimpi::mpi {
namespace {

TEST(Datatype, BasicTypesHaveNaturalSizes) {
    EXPECT_EQ(Datatype::byte_().size(), 1u);
    EXPECT_EQ(Datatype::char_().size(), 1u);
    EXPECT_EQ(Datatype::int32().size(), 4u);
    EXPECT_EQ(Datatype::int64().size(), 8u);
    EXPECT_EQ(Datatype::float32().size(), 4u);
    EXPECT_EQ(Datatype::float64().size(), 8u);
    EXPECT_TRUE(Datatype::float64().is_contiguous());
    EXPECT_EQ(Datatype::float64().extent(), 8);
    EXPECT_EQ(Datatype::float64().depth(), 1);
}

TEST(Datatype, ContiguousAggregates) {
    const auto t = Datatype::contiguous(10, Datatype::int32());
    EXPECT_EQ(t.size(), 40u);
    EXPECT_EQ(t.extent(), 40);
    EXPECT_TRUE(t.is_contiguous());
    EXPECT_EQ(t.blocks_per_item(), 10);
    EXPECT_EQ(t.depth(), 2);
}

TEST(Datatype, VectorLayout) {
    // 4 blocks of 2 doubles, stride 3 doubles: |dd.|dd.|dd.|dd|
    const auto t = Datatype::vector(4, 2, 3, Datatype::float64());
    EXPECT_EQ(t.size(), 4u * 2 * 8);
    EXPECT_EQ(t.extent(), 3 * 8 * 3 + 2 * 8);  // 3 strides + last block
    EXPECT_FALSE(t.is_contiguous());
    EXPECT_EQ(t.lb(), 0);
}

TEST(Datatype, VectorWithDenseStrideIsContiguous) {
    const auto t = Datatype::vector(4, 2, 2, Datatype::float64());
    EXPECT_EQ(t.size(), 64u);
    EXPECT_EQ(t.extent(), 64);
    EXPECT_TRUE(t.is_contiguous());
}

TEST(Datatype, HvectorNegativeStride) {
    const auto t = Datatype::hvector(3, 1, -16, Datatype::float64());
    EXPECT_EQ(t.size(), 24u);
    EXPECT_EQ(t.lb(), -32);
    EXPECT_EQ(t.extent(), 40);  // from -32 to +8
}

TEST(Datatype, IndexedLayout) {
    const std::array<int, 3> lens{2, 1, 3};
    const std::array<int, 3> displs{0, 4, 8};
    const auto t = Datatype::indexed(lens, displs, Datatype::int32());
    EXPECT_EQ(t.size(), 24u);
    EXPECT_EQ(t.extent(), (8 + 3) * 4);
    EXPECT_EQ(t.blocks_per_item(), 6);
}

TEST(Datatype, StructLayout) {
    // struct { int32 a; char pad[4]; double b[2]; }
    const std::array<int, 2> lens{1, 2};
    const std::array<std::ptrdiff_t, 2> displs{0, 8};
    const std::array<Datatype, 2> types{Datatype::int32(), Datatype::float64()};
    const auto t = Datatype::structure(lens, displs, types);
    EXPECT_EQ(t.size(), 20u);
    EXPECT_EQ(t.extent(), 24);
    EXPECT_FALSE(t.is_contiguous());
    EXPECT_EQ(t.blocks_per_item(), 3);
}

TEST(Datatype, ResizedOverridesBounds) {
    const auto v = Datatype::vector(2, 1, 2, Datatype::int32());
    const auto t = Datatype::resized(v, -4, 32);
    EXPECT_EQ(t.size(), v.size());
    EXPECT_EQ(t.lb(), -4);
    EXPECT_EQ(t.extent(), 32);
}

TEST(Datatype, NestedTypesMultiplyCounts) {
    const auto inner = Datatype::vector(4, 1, 2, Datatype::float64());
    const auto outer = Datatype::contiguous(3, inner);
    EXPECT_EQ(outer.size(), 3u * 4 * 8);
    EXPECT_EQ(outer.blocks_per_item(), 12);
    EXPECT_EQ(outer.depth(), 3);
    EXPECT_GT(outer.traversal_steps_per_item(), outer.blocks_per_item());
}

TEST(Datatype, ForEachBlockVisitsTypeMapOrder) {
    const auto t = Datatype::vector(3, 1, 2, Datatype::float64());
    std::vector<std::pair<std::ptrdiff_t, std::size_t>> blocks;
    t.for_each_block(0, 2, [&](std::ptrdiff_t off, std::size_t len) {
        blocks.emplace_back(off, len);
    });
    // extent = 2*16+8 = 40; instance 1 starts at +40. The last block of
    // instance 0 (offset 32) is adjacent to the first of instance 1
    // (offset 40), so they coalesce into one 16-byte copy.
    const std::vector<std::pair<std::ptrdiff_t, std::size_t>> expected{
        {0, 8}, {16, 8}, {32, 16}, {56, 8}, {72, 8}};
    EXPECT_EQ(blocks, expected);
}

TEST(Datatype, ForEachBlockCoalescesContiguousRuns) {
    // 4 blocks of 16 doubles each: every block is one 128-byte copy, not 16
    // separate 8-byte visits.
    const auto t = Datatype::vector(4, 16, 32, Datatype::float64());
    std::vector<std::size_t> lens;
    t.for_each_block(0, 1, [&](std::ptrdiff_t, std::size_t len) {
        lens.push_back(len);
    });
    EXPECT_EQ(lens, (std::vector<std::size_t>{128, 128, 128, 128}));
    // A fully contiguous type collapses to a single block.
    const auto c = Datatype::contiguous(64, Datatype::int32());
    int visits = 0;
    c.for_each_block(0, 4, [&](std::ptrdiff_t off, std::size_t len) {
        EXPECT_EQ(off, 0);
        EXPECT_EQ(len, 4u * 64 * 4);
        ++visits;
    });
    EXPECT_EQ(visits, 1);
}

TEST(Datatype, CommitBuildsFlatRep) {
    auto t = Datatype::vector(8, 2, 4, Datatype::float64());
    EXPECT_FALSE(t.committed());
    t.commit();
    ASSERT_TRUE(t.committed());
    const FlatRep& f = t.flat();
    EXPECT_EQ(f.type_size, t.size());
    EXPECT_EQ(f.type_extent, t.extent());
    // Single leaf: 8 replications of a 16-byte dense block (2 doubles merge).
    ASSERT_EQ(f.leaves.size(), 1u);
    EXPECT_EQ(f.leaves[0].blocklen, 16u);
    ASSERT_EQ(f.leaves[0].stack.size(), 1u);
    EXPECT_EQ(f.leaves[0].stack[0].count, 8);
    EXPECT_EQ(f.leaves[0].stack[0].extent, 32);
}

TEST(Datatype, CommitIsIdempotent) {
    auto t = Datatype::vector(4, 1, 2, Datatype::int32());
    t.commit();
    const auto* first = &t.flat();
    t.commit();
    EXPECT_EQ(first, &t.flat());
}

TEST(Datatype, PaperFigure3VectorOfStructFlattens) {
    // Figure 3: vector of struct { int; char[5]; gaps }; Figure 5 shows the
    // flattened representation. We model: int32 at 0, 5 chars at 6,
    // extent 16 (trailing gap), vector count 3 stride 16 bytes.
    const std::array<int, 2> lens{1, 5};
    const std::array<std::ptrdiff_t, 2> displs{0, 6};
    const std::array<Datatype, 2> types{Datatype::int32(), Datatype::char_()};
    auto s = Datatype::resized(Datatype::structure(lens, displs, types), 0, 16);
    auto t = Datatype::hvector(3, 1, 16, s);
    t.commit();
    const FlatRep& f = t.flat();
    // Two leaves survive (int block, merged char block), each replicated 3x.
    ASSERT_EQ(f.leaves.size(), 2u);
    EXPECT_EQ(f.leaves[0].blocklen, 4u);
    EXPECT_EQ(f.leaves[0].first_offset, 0);
    EXPECT_EQ(f.leaves[1].blocklen, 5u);  // 5 chars merged into one block
    EXPECT_EQ(f.leaves[1].first_offset, 6);
    for (const auto& leaf : f.leaves) {
        ASSERT_EQ(leaf.stack.size(), 1u);
        EXPECT_EQ(leaf.stack[0].count, 3);
        EXPECT_EQ(leaf.stack[0].extent, 16);
    }
    EXPECT_EQ(f.max_depth, 1);
}

TEST(Datatype, MergeElidesCountOneLevels) {
    Config cfg = default_config();
    auto t = Datatype::contiguous(1, Datatype::vector(4, 1, 2, Datatype::int32()));
    t.commit(cfg);
    // The contiguous(1) level must not appear in the stack.
    ASSERT_EQ(t.flat().leaves.size(), 1u);
    EXPECT_EQ(t.flat().leaves[0].stack.size(), 1u);
}

TEST(Datatype, UnmergedStacksKeepAllLevels) {
    Config cfg = default_config();
    cfg.ff_merge_stacks = false;
    auto t = Datatype::contiguous(2, Datatype::vector(4, 2, 3, Datatype::int32()));
    t.commit(cfg);
    ASSERT_EQ(t.flat().leaves.size(), 1u);
    // contig level + vector count level + blocklen level = 3 items.
    EXPECT_EQ(t.flat().leaves[0].stack.size(), 3u);
    EXPECT_FALSE(t.flat().merged);
}

TEST(Datatype, AdjacentStructMembersFuse) {
    // struct { int32 at 0; int32 at 4 } -> one 8-byte leaf after merging.
    const std::array<int, 2> lens{1, 1};
    const std::array<std::ptrdiff_t, 2> displs{0, 4};
    const std::array<Datatype, 2> types{Datatype::int32(), Datatype::int32()};
    auto t = Datatype::structure(lens, displs, types);
    t.commit();
    ASSERT_EQ(t.flat().leaves.size(), 1u);
    EXPECT_EQ(t.flat().leaves[0].blocklen, 8u);
}

TEST(Datatype, FullyContiguousTypeFlattensToSingleBlock) {
    auto t = Datatype::contiguous(16, Datatype::contiguous(8, Datatype::float64()));
    t.commit();
    ASSERT_EQ(t.flat().leaves.size(), 1u);
    EXPECT_EQ(t.flat().leaves[0].blocklen, 16u * 8 * 8);
    EXPECT_TRUE(t.flat().leaves[0].stack.empty());
    EXPECT_TRUE(t.flat().leaf_major_is_canonical());
}

TEST(Datatype, FingerprintDistinguishesLayouts) {
    auto a = Datatype::vector(8, 1, 2, Datatype::float64());
    auto b = Datatype::vector(8, 1, 3, Datatype::float64());
    auto a2 = Datatype::vector(8, 1, 2, Datatype::float64());
    a.commit();
    b.commit();
    a2.commit();
    EXPECT_NE(a.fingerprint(), b.fingerprint());
    EXPECT_EQ(a.fingerprint(), a2.fingerprint());
}

TEST(Datatype, LeafMajorCanonicalDetection) {
    // Interleaved struct members: leaf-major != type-map order.
    const std::array<int, 2> lens{1, 1};
    const std::array<std::ptrdiff_t, 2> displs{0, 8};
    const std::array<Datatype, 2> types{Datatype::int32(), Datatype::int32()};
    auto interleaved =
        Datatype::hvector(4, 1, 16, Datatype::resized(Datatype::structure(lens, displs, types), 0, 16));
    interleaved.commit();
    EXPECT_FALSE(interleaved.flat().leaf_major_is_canonical());

    // Single-leaf vector: always canonical.
    auto v = Datatype::vector(4, 1, 2, Datatype::int32());
    v.commit();
    EXPECT_TRUE(v.flat().leaf_major_is_canonical());
}

TEST(Datatype, ZeroCountTypesAreEmpty) {
    auto t = Datatype::vector(0, 4, 8, Datatype::int32());
    EXPECT_EQ(t.size(), 0u);
    t.commit();
    EXPECT_TRUE(t.flat().leaves.empty());
}

TEST(Datatype, InvalidConstructionPanics) {
    EXPECT_THROW(Datatype::contiguous(-1, Datatype::int32()), Panic);
    EXPECT_THROW(Datatype::contiguous(2, Datatype{}), Panic);
    const std::array<int, 2> lens{1, 1};
    const std::array<int, 1> displs{0};
    EXPECT_THROW(Datatype::indexed(lens, displs, Datatype::int32()), Panic);
}

TEST(Datatype, DescribeMentionsStructure) {
    const auto t = Datatype::vector(4, 2, 3, Datatype::float64());
    const std::string d = t.describe();
    EXPECT_NE(d.find("hvector"), std::string::npos);
    EXPECT_NE(d.find("float64"), std::string::npos);
}

}  // namespace
}  // namespace scimpi::mpi
