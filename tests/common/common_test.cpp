#include <gtest/gtest.h>

#include <set>

#include "common/config.hpp"
#include "common/log.hpp"
#include "common/rng.hpp"
#include "common/status.hpp"
#include "common/units.hpp"

namespace scimpi {
namespace {

TEST(Units, BinaryLiterals) {
    EXPECT_EQ(4_KiB, 4096u);
    EXPECT_EQ(2_MiB, 2u * 1024 * 1024);
    EXPECT_EQ(1_GiB, 1024u * 1024 * 1024);
}

TEST(Units, TimeLiteralsAndConversions) {
    EXPECT_EQ(3_us, 3000);
    EXPECT_EQ(2_ms, 2'000'000);
    EXPECT_EQ(1_s, 1'000'000'000);
    EXPECT_DOUBLE_EQ(to_us(1500), 1.5);
    EXPECT_DOUBLE_EQ(to_ms(2'500'000), 2.5);
    EXPECT_DOUBLE_EQ(to_seconds(1_s), 1.0);
}

TEST(Units, TransferTimeAndBandwidthAreInverse) {
    const SimTime t = transfer_time(1_MiB, 100.0);
    EXPECT_NEAR(to_ms(t), 10.0, 0.01);
    EXPECT_NEAR(bandwidth_mib(1_MiB, t), 100.0, 0.1);
}

TEST(Units, TransferTimeEdgeCases) {
    EXPECT_EQ(transfer_time(0, 100.0), 0);
    EXPECT_EQ(transfer_time(100, 0.0), 0);
    EXPECT_GE(transfer_time(1, 1e12), 1);  // never zero for nonzero payload
    EXPECT_EQ(bandwidth_mib(100, 0), 0.0);
}

TEST(Status, OkAndErrorBasics) {
    const Status ok = Status::ok();
    EXPECT_TRUE(ok.is_ok());
    EXPECT_TRUE(static_cast<bool>(ok));
    EXPECT_EQ(ok.code(), Errc::ok);

    const Status err = Status::error(Errc::truncated, "too small");
    EXPECT_FALSE(err);
    EXPECT_EQ(err.code(), Errc::truncated);
    EXPECT_EQ(err.to_string(), "truncated: too small");
}

TEST(Status, EveryErrcHasAName) {
    for (const Errc e : {Errc::ok, Errc::invalid_argument, Errc::out_of_memory,
                         Errc::not_found, Errc::truncated, Errc::unsupported,
                         Errc::link_failure, Errc::rma_sync_error, Errc::deadlock,
                         Errc::peer_unreachable, Errc::io_error}) {
        EXPECT_STRNE(errc_name(e), "unknown");
        EXPECT_GT(std::string(errc_name(e)).size(), 1u);
    }
}

TEST(Result, ValueAndStatusPaths) {
    Result<int> good(42);
    ASSERT_TRUE(good.is_ok());
    EXPECT_EQ(good.value(), 42);
    EXPECT_TRUE(good.status().is_ok());
    EXPECT_EQ(good.value_or(-1), 42);

    Result<int> bad(Status::error(Errc::not_found, "gone"));
    EXPECT_FALSE(bad);
    EXPECT_EQ(bad.status().code(), Errc::not_found);
    EXPECT_EQ(bad.value_or(-1), -1);
    EXPECT_THROW(bad.value(), Panic);
}

TEST(Result, ConstructingFromOkStatusPanics) {
    EXPECT_THROW(Result<int>(Status::ok()), Panic);
}

TEST(Require, MacroThrowsWithMessage) {
    try {
        SCIMPI_REQUIRE(false, "precondition text");
        FAIL();
    } catch (const Panic& e) {
        EXPECT_NE(std::string(e.what()).find("precondition text"), std::string::npos);
    }
}

TEST(Rng, DeterministicPerSeed) {
    Rng a(7), b(7), c(8);
    for (int i = 0; i < 100; ++i) {
        const auto va = a.next();
        EXPECT_EQ(va, b.next());
        (void)c.next();
    }
    Rng a2(7), c2(8);
    EXPECT_NE(a2.next(), c2.next());
}

TEST(Rng, BelowStaysInRange) {
    Rng rng(3);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 1000; ++i) {
        const auto v = rng.below(17);
        EXPECT_LT(v, 17u);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 17u);  // all residues hit
}

TEST(Rng, RangeInclusive) {
    Rng rng(5);
    for (int i = 0; i < 200; ++i) {
        const auto v = rng.range(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
    }
}

TEST(Rng, UniformInUnitIntervalAndChance) {
    Rng rng(11);
    int hits = 0;
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
        if (rng.chance(0.25)) ++hits;
    }
    EXPECT_NEAR(hits, 2500, 200);
}

TEST(Config, DefaultsMatchPaperSetup) {
    const Config cfg = default_config();
    EXPECT_EQ(cfg.short_threshold, 128u);
    EXPECT_EQ(cfg.eager_threshold, 16_KiB);
    EXPECT_EQ(cfg.rndv_chunk, 64_KiB);
    EXPECT_TRUE(cfg.use_direct_pack_ff);
    EXPECT_EQ(cfg.ff_min_block, 0u);  // paper footnote: full comparison
    EXPECT_TRUE(cfg.write_combine);
    EXPECT_TRUE(cfg.stream_buffers);
    EXPECT_FALSE(cfg.use_dma_rndv);  // outlook feature, off by default
    EXPECT_EQ(cfg.link_error_rate, 0.0);
}

TEST(Log, LevelsAreAdjustable) {
    const LogLevel before = log_level();
    set_log_level(LogLevel::error);
    EXPECT_EQ(log_level(), LogLevel::error);
    log_message(LogLevel::error, "visible test message (expected in output)");
    set_log_level(before);
}

}  // namespace
}  // namespace scimpi
