#include "sim/schedule.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "sim/dispatcher.hpp"
#include "sim/engine.hpp"
#include "sim/process.hpp"
#include "sim/sync.hpp"

namespace scimpi::sim {
namespace {

/// Test controller: records every choice point it is offered and picks the
/// alternative scripted for that encounter index (default 0).
struct ScriptController : ScheduleController {
    SimTime fz = 0;
    std::map<std::uint64_t, std::size_t> picks;
    std::vector<ChoicePoint> seen;
    std::uint64_t n = 0;

    std::size_t choose(const ChoicePoint& cp) override {
        seen.push_back(cp);
        const auto it = picks.find(n++);
        return it == picks.end() ? 0 : it->second;
    }
    [[nodiscard]] SimTime fuzz() const override { return fz; }
};

std::vector<std::string> labels_of(const ChoicePoint& cp) {
    std::vector<std::string> out;
    for (const ChoiceAlt& a : cp.alts) out.push_back(a.label);
    return out;
}

TEST(Schedule, ExactTieIsAChoicePointEvenWithZeroFuzz) {
    ScriptController ctrl;
    Engine eng;
    eng.set_schedule_controller(&ctrl);
    std::vector<std::string> order;
    eng.spawn("a", [&](Process&) { order.push_back("a"); });
    eng.spawn("b", [&](Process&) { order.push_back("b"); });
    eng.run();
    ASSERT_EQ(ctrl.seen.size(), 1u);
    EXPECT_EQ(ctrl.seen[0].kind, ChoiceKind::dispatch);
    EXPECT_EQ(labels_of(ctrl.seen[0]), (std::vector<std::string>{"a", "b"}));
    EXPECT_EQ(order, (std::vector<std::string>{"a", "b"}));  // default = FIFO
}

TEST(Schedule, FuzzWindowWidensTheCoEnabledSet) {
    // Wakeups at t=1000, 1100 and 5000: with fuzz=200 only the first two are
    // co-enabled; the 5000 wakeup dispatches alone later.
    ScriptController ctrl;
    ctrl.fz = 200;
    Engine eng;
    eng.set_schedule_controller(&ctrl);
    eng.spawn("a", [](Process& p) { p.delay(1000); });
    eng.spawn("b", [](Process& p) { p.delay(1100); });
    eng.spawn("c", [](Process& p) { p.delay(5000); });
    eng.run();
    // First cp: the initial t=0 tie of all three thread starts. Last cp:
    // a@1000 and b@1100 fall in one window; c@5000 is outside it and never
    // pairs with them.
    ASSERT_GE(ctrl.seen.size(), 2u);
    EXPECT_EQ(labels_of(ctrl.seen[0]), (std::vector<std::string>{"a", "b", "c"}));
    EXPECT_EQ(labels_of(ctrl.seen.back()), (std::vector<std::string>{"a", "b"}));
}

TEST(Schedule, DefaultChoicesReproduceTheControllerlessRun) {
    auto run_once = [](ScheduleController* ctrl) {
        Engine eng;
        if (ctrl != nullptr) eng.set_schedule_controller(ctrl);
        std::vector<int> order;
        for (int i = 0; i < 5; ++i)
            eng.spawn("p" + std::to_string(i), [&order, i](Process& p) {
                p.delay((i * 13) % 7);
                order.push_back(i);
                p.delay((i * 29) % 11);
                order.push_back(i + 100);
            });
        eng.run();
        return order;
    };
    ScriptController all_default;
    all_default.fz = 500;  // wide windows, but every choice stays at index 0
    EXPECT_EQ(run_once(nullptr), run_once(&all_default));
}

TEST(Schedule, NonDefaultDispatchChoiceReordersExecution) {
    auto run_once = [](ScheduleController* ctrl) {
        Engine eng;
        if (ctrl != nullptr) eng.set_schedule_controller(ctrl);
        std::vector<std::string> order;
        eng.spawn("a", [&](Process&) { order.push_back("a"); });
        eng.spawn("b", [&](Process&) { order.push_back("b"); });
        eng.run();
        return order;
    };
    ScriptController flip;
    flip.picks[0] = 1;  // dispatch "b" first at the t=0 tie
    EXPECT_EQ(run_once(&flip), (std::vector<std::string>{"b", "a"}));
    EXPECT_EQ(run_once(nullptr), (std::vector<std::string>{"a", "b"}));
}

TEST(Schedule, ChoosingALaterEntryAdvancesTimeMonotonically) {
    // Dispatching b@600 before a@500 must clamp the clock forward, never
    // back: a then observes t=600, not its own 500 wakeup stamp.
    ScriptController ctrl;
    ctrl.fz = 1000;
    ctrl.picks[2] = 1;  // cp2 = the {a@500, b@600} window; pick b
    Engine eng;
    eng.set_schedule_controller(&ctrl);
    std::vector<std::pair<std::string, SimTime>> stamps;
    eng.spawn("a", [&](Process& p) {
        p.delay(500);
        stamps.emplace_back("a", p.now());
    });
    eng.spawn("b", [&](Process& p) {
        p.delay(600);
        stamps.emplace_back("b", p.now());
    });
    eng.run();
    ASSERT_EQ(stamps.size(), 2u);
    EXPECT_EQ(stamps[0], (std::pair<std::string, SimTime>{"b", 600}));
    EXPECT_EQ(stamps[1], (std::pair<std::string, SimTime>{"a", 600}));
    EXPECT_EQ(eng.now(), 600);
}

TEST(Schedule, DispatcherDeliveryOrderIsAChoicePoint) {
    ScriptController ctrl;
    ctrl.picks[1] = 1;  // cp0: t=0 thread-start tie; cp1: the delivery pair
    Engine eng;
    eng.set_schedule_controller(&ctrl);
    Dispatcher disp(eng);
    std::vector<int> order;
    eng.spawn("setup", [&](Process&) {
        disp.at(50, [&] { order.push_back(1); });
        disp.at(50, [&] { order.push_back(2); });
    });
    eng.run();
    EXPECT_EQ(order, (std::vector<int>{2, 1}));
    // The delivery cp labels are the dispatcher item sequence numbers.
    bool saw_delivery = false;
    for (const ChoicePoint& cp : ctrl.seen) {
        if (cp.kind != ChoiceKind::delivery) continue;
        saw_delivery = true;
        EXPECT_EQ(labels_of(cp), (std::vector<std::string>{"d0", "d1"}));
        EXPECT_EQ(cp.alts[0].proc, -1);  // closures are opaque
    }
    EXPECT_TRUE(saw_delivery);
}

TEST(Schedule, MutexHandoverIsAChoicePoint) {
    auto run_once = [](ScheduleController* ctrl) {
        Engine eng;
        if (ctrl != nullptr) eng.set_schedule_controller(ctrl);
        SimMutex m;
        std::vector<std::string> order;
        eng.spawn("holder", [&](Process& p) {
            m.lock(p);
            p.delay(100);  // let w1 and w2 queue up behind us
            m.unlock(p);
        });
        eng.spawn("w1", [&](Process& p) {
            p.delay(10);
            m.lock(p);
            order.push_back("w1");
            m.unlock(p);
        });
        eng.spawn("w2", [&](Process& p) {
            p.delay(20);
            m.lock(p);
            order.push_back("w2");
            m.unlock(p);
        });
        eng.run();
        return order;
    };
    EXPECT_EQ(run_once(nullptr), (std::vector<std::string>{"w1", "w2"}));
    ScriptController flip;
    // cp0: t=0 three-way start tie; cp1: leftover {w1, w2} start tie;
    // cp2: the unlock hand-over between the two parked waiters.
    flip.picks[2] = 1;
    EXPECT_EQ(run_once(&flip), (std::vector<std::string>{"w2", "w1"}));
    ASSERT_GE(flip.seen.size(), 3u);
    EXPECT_EQ(flip.seen[2].kind, ChoiceKind::handover);
    EXPECT_EQ(labels_of(flip.seen[2]), (std::vector<std::string>{"w1", "w2"}));
}

TEST(Schedule, WaitQueueWakeOneHandoverIsAChoicePoint) {
    ScriptController flip;
    // cp0/cp1: start ties; cp2: the first send's wake_one hand-over.
    flip.picks[2] = 1;
    Engine eng;
    eng.set_schedule_controller(&flip);
    Mailbox<int> box;
    std::vector<std::string> order;
    eng.spawn("r1", [&](Process& p) {
        order.push_back("r1:" + std::to_string(box.recv(p)));
    });
    eng.spawn("r2", [&](Process& p) {
        order.push_back("r2:" + std::to_string(box.recv(p)));
    });
    eng.spawn("sender", [&](Process& p) {
        p.delay(50);
        box.send(7);
        box.send(8);
    });
    eng.run();
    // The wake_one hand-over went to r2 first.
    EXPECT_EQ(order, (std::vector<std::string>{"r2:7", "r1:8"}));
}

TEST(Schedule, DeadlockReportNamesTheWaitObject) {
    Engine eng;
    Mailbox<int> box;
    eng.spawn("starved", [&](Process& p) { (void)box.recv(p); });
    try {
        eng.run();
        FAIL() << "expected deadlock panic";
    } catch (const Panic& p) {
        const std::string msg = p.what();
        EXPECT_NE(msg.find("starved"), std::string::npos) << msg;
        EXPECT_NE(msg.find("(in mailbox recv)"), std::string::npos) << msg;
    }
}

TEST(Schedule, TraceTextRoundTrip) {
    DecisionTrace t;
    t.fuzz = 2000;
    t.decisions.push_back({7, "rank0"});
    t.decisions.push_back({12, "d31"});
    const std::string text = t.to_string();
    EXPECT_NE(text.find("fuzz 2000"), std::string::npos);
    EXPECT_NE(text.find("choice 7"), std::string::npos);
    auto parsed = DecisionTrace::parse(text);
    ASSERT_TRUE(parsed.is_ok()) << parsed.status().to_string();
    EXPECT_EQ(parsed.value().fuzz, 2000);
    ASSERT_EQ(parsed.value().decisions.size(), 2u);
    EXPECT_EQ(parsed.value().decisions[0].index, 7u);
    EXPECT_EQ(parsed.value().decisions[0].label, "rank0");
    EXPECT_EQ(parsed.value().decisions[1].index, 12u);
    EXPECT_EQ(parsed.value().decisions[1].label, "d31");
}

TEST(Schedule, TraceParseRejectsGarbage) {
    EXPECT_FALSE(DecisionTrace::parse("fuzz banana\n").is_ok());
    EXPECT_FALSE(DecisionTrace::parse("choice 3\n").is_ok());       // no label
    EXPECT_FALSE(DecisionTrace::parse("frobnicate 1 2\n").is_ok()); // unknown
}

TEST(Schedule, TraceFileRoundTrip) {
    DecisionTrace t;
    t.fuzz = 500;
    t.decisions.push_back({3, "b"});
    const std::string path = ::testing::TempDir() + "/sched_trace_test.txt";
    ASSERT_TRUE(t.save(path).is_ok());
    auto loaded = DecisionTrace::load(path);
    ASSERT_TRUE(loaded.is_ok()) << loaded.status().to_string();
    EXPECT_EQ(loaded.value().to_string(), t.to_string());
    std::remove(path.c_str());
}

TEST(Schedule, ReplayReproducesARecordedPerturbation) {
    auto run_once = [](ScheduleController* ctrl) {
        Engine eng;
        if (ctrl != nullptr) eng.set_schedule_controller(ctrl);
        std::vector<std::string> order;
        eng.spawn("a", [&](Process&) { order.push_back("a"); });
        eng.spawn("b", [&](Process&) { order.push_back("b"); });
        eng.run();
        return order;
    };
    DecisionTrace t;
    t.decisions.push_back({0, "b"});
    ReplayController rc(t);
    EXPECT_EQ(run_once(&rc), (std::vector<std::string>{"b", "a"}));
    EXPECT_EQ(rc.choice_points_seen(), 1u);
}

TEST(Schedule, ReplayPanicsOnDivergence) {
    DecisionTrace t;
    t.decisions.push_back({0, "no-such-process"});
    ReplayController rc(t);
    Engine eng;
    eng.set_schedule_controller(&rc);
    eng.spawn("a", [](Process&) {});
    eng.spawn("b", [](Process&) {});
    EXPECT_THROW(eng.run(), Panic);
}

TEST(Schedule, NoteSubjectReachesTheControllerViaCurrentEngine) {
    struct Spy : ScheduleController {
        std::vector<std::pair<int, const void*>> subjects;
        void on_subject(int proc, const void* s) override {
            subjects.emplace_back(proc, s);
        }
    } spy;
    Engine eng;
    eng.set_schedule_controller(&spy);
    int dummy = 0;
    eng.spawn("toucher", [&](Process&) { note_subject(&dummy); });
    eng.run();
    ASSERT_EQ(spy.subjects.size(), 1u);
    EXPECT_EQ(spy.subjects[0].second, &dummy);
}

TEST(Schedule, OnEdgeFiresWhenOneProcessWakesAnother) {
    struct Spy : ScheduleController {
        std::vector<std::pair<int, int>> edges;
        void on_edge(int from, int to) override { edges.emplace_back(from, to); }
    } spy;
    Engine eng;
    eng.set_schedule_controller(&spy);
    Event ev;
    Process& waiter = eng.spawn("waiter", [&](Process& p) { ev.wait(p); });
    Process& setter = eng.spawn("setter", [&](Process& p) {
        p.delay(10);
        ev.set();
    });
    eng.run();
    bool found = false;
    for (auto [from, to] : spy.edges)
        if (from == setter.id() && to == waiter.id()) found = true;
    EXPECT_TRUE(found);
}

}  // namespace
}  // namespace scimpi::sim
