#include "sim/trace.hpp"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "mpi/comm.hpp"
#include "mpi/rma/window.hpp"
#include "sim/sync.hpp"

namespace scimpi::sim {
namespace {

TEST(Tracer, DisabledByDefaultRecordsNothing) {
    Engine eng;
    eng.spawn("p", [](Process& p) {
        const TraceScope scope(p, "work");
        p.delay(100);
    });
    eng.run();
    EXPECT_EQ(eng.tracer().event_count(), 0u);
}

TEST(Tracer, SpansCaptureSimulatedDurations) {
    Engine eng;
    eng.tracer().enable();
    eng.spawn("p", [](Process& p) {
        p.delay(50);
        {
            const TraceScope scope(p, "phase-one");
            p.delay(200);
        }
        const TraceScope scope(p, "phase-two");
        p.delay(300);
    });
    eng.run();
    const auto& events = eng.tracer().events();
    ASSERT_EQ(events.size(), 2u);
    EXPECT_EQ(eng.tracer().name_of(events[0]), "phase-one");
    EXPECT_EQ(events[0].t0, 50);
    EXPECT_EQ(events[0].t1, 250);
    EXPECT_EQ(eng.tracer().name_of(events[1]), "phase-two");
    EXPECT_EQ(events[1].t1 - events[1].t0, 300);
}

TEST(Tracer, InstantMarkers) {
    Engine eng;
    eng.tracer().enable();
    eng.spawn("p", [&](Process& p) {
        p.delay(42);
        eng.tracer().instant(p.id(), "marker", p.now());
    });
    eng.run();
    ASSERT_EQ(eng.tracer().event_count(), 1u);
    EXPECT_EQ(eng.tracer().events()[0].kind, Tracer::Kind::instant);
    EXPECT_EQ(eng.tracer().events()[0].t0, 42);
}

TEST(Tracer, ChromeJsonIsWellFormed) {
    Engine eng;
    eng.tracer().enable();
    eng.spawn("p", [](Process& p) {
        const TraceScope scope(p, R"(weird "name" \ here)");
        p.delay(10);
    });
    eng.run();
    const std::string json = eng.tracer().to_chrome_json();
    EXPECT_EQ(json.front(), '[');
    EXPECT_NE(json.find(R"("ph": "X")"), std::string::npos);
    EXPECT_NE(json.find(R"(\"name\")"), std::string::npos);  // escaped quotes
    EXPECT_NE(json.find("\"dur\": 0.010"), std::string::npos);
    // Balanced braces.
    EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
              std::count(json.begin(), json.end(), '}'));
}

TEST(Tracer, MpiWorkloadProducesProtocolSpans) {
    mpi::ClusterOptions opt;
    opt.nodes = 2;
    mpi::Cluster c(opt);
    c.engine().tracer().enable();
    c.run([](mpi::Comm& comm) {
        std::vector<double> buf(64_KiB / 8, 1.0);
        if (comm.rank() == 0)
            ASSERT_TRUE(comm.send(buf.data(), static_cast<int>(buf.size()),
                                  mpi::Datatype::float64(), 1, 0));
        else
            comm.recv(buf.data(), static_cast<int>(buf.size()),
                      mpi::Datatype::float64(), 0, 0);
    });
    const Tracer& tr = c.engine().tracer();
    int packs = 0, unpacks = 0, starts = 0;
    for (const auto& e : tr.events()) {
        if (tr.name_of(e) == "rndv:pack_chunk") ++packs;
        if (tr.name_of(e) == "rndv:unpack_chunk") ++unpacks;
        if (tr.name_of(e) == "mpi:send_start") ++starts;
        EXPECT_GE(e.t1, e.t0);
    }
    EXPECT_EQ(packs, 1);    // 64 KiB = exactly one rendezvous chunk
    EXPECT_EQ(unpacks, 1);
    EXPECT_GE(starts, 1);   // user send + finalize barrier tokens
}

TEST(Tracer, FlowEventsPairUpAcrossMpiRanks) {
    mpi::ClusterOptions opt;
    opt.nodes = 2;
    mpi::Cluster c(opt);
    c.engine().tracer().enable();
    c.run([](mpi::Comm& comm) {
        std::vector<double> small(16, 1.0);   // 128 B -> short path
        std::vector<double> mid(128, 1.0);    // 1 KiB -> eager path
        std::vector<double> big(64_KiB / 8, 1.0);  // -> rendezvous path
        if (comm.rank() == 0) {
            ASSERT_TRUE(comm.send(small.data(), 16, mpi::Datatype::float64(), 1, 0));
            ASSERT_TRUE(comm.send(mid.data(), 128, mpi::Datatype::float64(), 1, 1));
            ASSERT_TRUE(comm.send(big.data(), static_cast<int>(big.size()),
                                  mpi::Datatype::float64(), 1, 2));
        } else {
            comm.recv(small.data(), 16, mpi::Datatype::float64(), 0, 0);
            comm.recv(mid.data(), 128, mpi::Datatype::float64(), 0, 1);
            comm.recv(big.data(), static_cast<int>(big.size()),
                      mpi::Datatype::float64(), 0, 2);
        }
    });

    const Tracer& tr = c.engine().tracer();
    std::multiset<std::uint64_t> starts, ends;
    for (const auto& e : tr.events()) {
        if (e.kind == Tracer::Kind::flow_start) {
            EXPECT_EQ(tr.name_of(e), "msg");
            EXPECT_EQ(tr.cat_of(e), "p2p");
            starts.insert(e.arg);
        } else if (e.kind == Tracer::Kind::flow_end) {
            ends.insert(e.arg);
        }
    }
    // Every message on the wire opens exactly one flow and closes it at
    // delivery: 3 user messages plus the finalize-barrier tokens.
    EXPECT_GE(starts.size(), 3u);
    EXPECT_EQ(starts, ends);
    // Flow ids are unique per message.
    std::set<std::uint64_t> unique(starts.begin(), starts.end());
    EXPECT_EQ(unique.size(), starts.size());
}

TEST(Tracer, FlowEndpointsLandOnSenderAndReceiverTracks) {
    mpi::ClusterOptions opt;
    opt.nodes = 2;
    mpi::Cluster c(opt);
    c.engine().tracer().enable();
    c.run([](mpi::Comm& comm) {
        std::vector<double> buf(128, 1.0);
        if (comm.rank() == 0)
            ASSERT_TRUE(comm.send(buf.data(), 128, mpi::Datatype::float64(), 1, 7));
        else
            comm.recv(buf.data(), 128, mpi::Datatype::float64(), 0, 7);
    });
    const Tracer& tr = c.engine().tracer();
    // Find the flow of the user eager message: its "s" is on rank 0's track
    // and its "f" on rank 1's (the finalize barrier contributes flows in
    // both directions, so match the pair up by id).
    std::map<std::uint64_t, std::pair<int, int>> pairs;  // id -> (s-track, f-track)
    for (const auto& e : tr.events()) {
        if (e.kind == Tracer::Kind::flow_start) pairs[e.arg].first = e.track;
        if (e.kind == Tracer::Kind::flow_end) pairs[e.arg].second = e.track;
    }
    ASSERT_FALSE(pairs.empty());
    bool cross_rank = false;
    for (const auto& [id, p] : pairs)
        if (p.first != p.second) cross_rank = true;
    EXPECT_TRUE(cross_rank);  // at least one arrow actually crosses tracks
}

TEST(Tracer, RmaOpsEmitFlowArrows) {
    mpi::ClusterOptions opt;
    opt.nodes = 2;
    mpi::Cluster c(opt);
    c.engine().tracer().enable();
    c.run([](mpi::Comm& comm) {
        constexpr std::size_t kWin = 8_KiB;
        std::vector<std::byte> heap(kWin, std::byte{0});  // private -> emulated
        auto win = comm.win_create(heap.data(), kWin);
        std::vector<double> buf(8, 1.0);
        win->fence();
        if (comm.rank() == 0) {
            ASSERT_TRUE(win->put(buf.data(), 8, mpi::Datatype::float64(), 1, 0));
        }
        win->fence();
    });
    const Tracer& tr = c.engine().tracer();
    std::multiset<std::uint64_t> starts, ends;
    for (const auto& e : tr.events()) {
        if (e.cat_id == 0 || tr.cat_of(e) != "rma") continue;
        if (e.kind == Tracer::Kind::flow_start) starts.insert(e.arg);
        if (e.kind == Tracer::Kind::flow_end) ends.insert(e.arg);
    }
    EXPECT_EQ(starts.size(), 1u);  // the emulated put, origin -> handler
    EXPECT_EQ(starts, ends);
}

TEST(Tracer, ChromeJsonNamesTracksAndSerializesFlows) {
    mpi::ClusterOptions opt;
    opt.nodes = 2;
    mpi::Cluster c(opt);
    c.engine().tracer().enable();
    c.run([](mpi::Comm& comm) {
        std::vector<double> buf(128, 1.0);
        if (comm.rank() == 0)
            ASSERT_TRUE(comm.send(buf.data(), 128, mpi::Datatype::float64(), 1, 0));
        else
            comm.recv(buf.data(), 128, mpi::Datatype::float64(), 0, 0);
    });
    const std::string json = c.engine().tracer().to_chrome_json();
    // Perfetto metadata: the process is named once, every rank track too.
    EXPECT_NE(json.find(R"("ph": "M")"), std::string::npos);
    EXPECT_NE(json.find(R"("name": "process_name")"), std::string::npos);
    EXPECT_NE(json.find(R"("name": "thread_name")"), std::string::npos);
    EXPECT_NE(json.find(R"("name": "rank 0")"), std::string::npos);
    EXPECT_NE(json.find(R"("name": "rank 1")"), std::string::npos);
    // Flow endpoints with Perfetto's enclosing-slice binding on the finish.
    EXPECT_NE(json.find(R"("ph": "s")"), std::string::npos);
    EXPECT_NE(json.find(R"("ph": "f", "bp": "e")"), std::string::npos);
    // Balanced braces (the cheap well-formedness proxy used elsewhere).
    EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
              std::count(json.begin(), json.end(), '}'));
}

TEST(Tracer, TrackNamesAreRecordedEvenWhileDisabled) {
    mpi::ClusterOptions opt;
    opt.nodes = 2;
    mpi::Cluster c(opt);  // tracer stays disabled
    c.run([](mpi::Comm& comm) { (void)comm; });
    EXPECT_EQ(c.engine().tracer().event_count(), 0u);
    // Every spawned process gets a track name (ranks, RMA handler daemons);
    // the rank processes carry the Perfetto-friendly "rank N" labels.
    const auto& names = c.engine().tracer().track_names();
    EXPECT_GE(names.size(), 2u);
    int ranks_named = 0;
    for (const auto& [track, name] : names)
        if (name == "rank 0" || name == "rank 1") ++ranks_named;
    EXPECT_EQ(ranks_named, 2);
}

TEST(Tracer, WriteToFileRoundTrips) {
    Engine eng;
    eng.tracer().enable();
    eng.spawn("p", [](Process& p) {
        const TraceScope scope(p, "io");
        p.delay(5);
    });
    eng.run();
    const std::string path = ::testing::TempDir() + "/scimpi_trace.json";
    ASSERT_TRUE(eng.tracer().write_chrome_json(path).is_ok());
    std::FILE* f = std::fopen(path.c_str(), "r");
    ASSERT_NE(f, nullptr);
    char head[2] = {};
    ASSERT_EQ(std::fread(head, 1, 1, f), 1u);
    std::fclose(f);
    EXPECT_EQ(head[0], '[');
}

}  // namespace
}  // namespace scimpi::sim
