#include "sim/trace.hpp"

#include <gtest/gtest.h>

#include "mpi/comm.hpp"
#include "sim/sync.hpp"

namespace scimpi::sim {
namespace {

TEST(Tracer, DisabledByDefaultRecordsNothing) {
    Engine eng;
    eng.spawn("p", [](Process& p) {
        const TraceScope scope(p, "work");
        p.delay(100);
    });
    eng.run();
    EXPECT_EQ(eng.tracer().event_count(), 0u);
}

TEST(Tracer, SpansCaptureSimulatedDurations) {
    Engine eng;
    eng.tracer().enable();
    eng.spawn("p", [](Process& p) {
        p.delay(50);
        {
            const TraceScope scope(p, "phase-one");
            p.delay(200);
        }
        const TraceScope scope(p, "phase-two");
        p.delay(300);
    });
    eng.run();
    const auto& events = eng.tracer().events();
    ASSERT_EQ(events.size(), 2u);
    EXPECT_EQ(eng.tracer().name_of(events[0]), "phase-one");
    EXPECT_EQ(events[0].t0, 50);
    EXPECT_EQ(events[0].t1, 250);
    EXPECT_EQ(eng.tracer().name_of(events[1]), "phase-two");
    EXPECT_EQ(events[1].t1 - events[1].t0, 300);
}

TEST(Tracer, InstantMarkers) {
    Engine eng;
    eng.tracer().enable();
    eng.spawn("p", [&](Process& p) {
        p.delay(42);
        eng.tracer().instant(p.id(), "marker", p.now());
    });
    eng.run();
    ASSERT_EQ(eng.tracer().event_count(), 1u);
    EXPECT_EQ(eng.tracer().events()[0].kind, Tracer::Kind::instant);
    EXPECT_EQ(eng.tracer().events()[0].t0, 42);
}

TEST(Tracer, ChromeJsonIsWellFormed) {
    Engine eng;
    eng.tracer().enable();
    eng.spawn("p", [](Process& p) {
        const TraceScope scope(p, R"(weird "name" \ here)");
        p.delay(10);
    });
    eng.run();
    const std::string json = eng.tracer().to_chrome_json();
    EXPECT_EQ(json.front(), '[');
    EXPECT_NE(json.find(R"("ph": "X")"), std::string::npos);
    EXPECT_NE(json.find(R"(\"name\")"), std::string::npos);  // escaped quotes
    EXPECT_NE(json.find("\"dur\": 0.010"), std::string::npos);
    // Balanced braces.
    EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
              std::count(json.begin(), json.end(), '}'));
}

TEST(Tracer, MpiWorkloadProducesProtocolSpans) {
    mpi::ClusterOptions opt;
    opt.nodes = 2;
    mpi::Cluster c(opt);
    c.engine().tracer().enable();
    c.run([](mpi::Comm& comm) {
        std::vector<double> buf(64_KiB / 8, 1.0);
        if (comm.rank() == 0)
            comm.send(buf.data(), static_cast<int>(buf.size()),
                      mpi::Datatype::float64(), 1, 0);
        else
            comm.recv(buf.data(), static_cast<int>(buf.size()),
                      mpi::Datatype::float64(), 0, 0);
    });
    const Tracer& tr = c.engine().tracer();
    int packs = 0, unpacks = 0, starts = 0;
    for (const auto& e : tr.events()) {
        if (tr.name_of(e) == "rndv:pack_chunk") ++packs;
        if (tr.name_of(e) == "rndv:unpack_chunk") ++unpacks;
        if (tr.name_of(e) == "mpi:send_start") ++starts;
        EXPECT_GE(e.t1, e.t0);
    }
    EXPECT_EQ(packs, 1);    // 64 KiB = exactly one rendezvous chunk
    EXPECT_EQ(unpacks, 1);
    EXPECT_GE(starts, 1);   // user send + finalize barrier tokens
}

TEST(Tracer, WriteToFileRoundTrips) {
    Engine eng;
    eng.tracer().enable();
    eng.spawn("p", [](Process& p) {
        const TraceScope scope(p, "io");
        p.delay(5);
    });
    eng.run();
    const std::string path = ::testing::TempDir() + "/scimpi_trace.json";
    ASSERT_TRUE(eng.tracer().write_chrome_json(path).is_ok());
    std::FILE* f = std::fopen(path.c_str(), "r");
    ASSERT_NE(f, nullptr);
    char head[2] = {};
    ASSERT_EQ(std::fread(head, 1, 1, f), 1u);
    std::fclose(f);
    EXPECT_EQ(head[0], '[');
}

}  // namespace
}  // namespace scimpi::sim
