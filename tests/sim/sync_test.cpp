#include "sim/sync.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace scimpi::sim {
namespace {

TEST(Event, WaitPassesAfterSet) {
    Engine eng;
    Event ev;
    std::vector<std::string> order;
    eng.spawn("waiter", [&](Process& p) {
        ev.wait(p);
        order.push_back("waiter");
        EXPECT_EQ(p.now(), 50);
    });
    eng.spawn("setter", [&](Process& p) {
        p.delay(50);
        order.push_back("setter");
        ev.set();
    });
    eng.run();
    EXPECT_EQ(order, (std::vector<std::string>{"setter", "waiter"}));
}

TEST(Event, AlreadySetDoesNotBlock) {
    Engine eng;
    Event ev;
    ev.set();
    eng.spawn("w", [&](Process& p) {
        ev.wait(p);
        EXPECT_EQ(p.now(), 0);
    });
    eng.run();
}

TEST(Event, ResetBlocksAgain) {
    Engine eng;
    Event ev;
    int passes = 0;
    eng.spawn("w", [&](Process& p) {
        ev.wait(p);
        ++passes;
        ev.reset();
        ev.wait(p);
        ++passes;
    });
    eng.spawn("s", [&](Process& p) {
        ev.set();
        p.delay(10);
        ev.set();
    });
    eng.run();
    EXPECT_EQ(passes, 2);
}

TEST(Event, SetWakesAllWaiters) {
    Engine eng;
    Event ev;
    int woken = 0;
    for (int i = 0; i < 6; ++i)
        eng.spawn("w" + std::to_string(i), [&](Process& p) {
            ev.wait(p);
            ++woken;
        });
    eng.spawn("s", [&](Process& p) {
        p.delay(5);
        ev.set();
    });
    eng.run();
    EXPECT_EQ(woken, 6);
}

TEST(Mailbox, FifoDelivery) {
    Engine eng;
    Mailbox<int> mb;
    std::vector<int> got;
    eng.spawn("recv", [&](Process& p) {
        for (int i = 0; i < 3; ++i) got.push_back(mb.recv(p));
    });
    eng.spawn("send", [&](Process& p) {
        for (int i = 1; i <= 3; ++i) {
            mb.send(i * 10);
            p.delay(1);
        }
    });
    eng.run();
    EXPECT_EQ(got, (std::vector<int>{10, 20, 30}));
}

TEST(Mailbox, TryRecvNonBlocking) {
    Engine eng;
    Mailbox<int> mb;
    eng.spawn("p", [&](Process&) {
        EXPECT_FALSE(mb.try_recv().has_value());
        mb.send(7);
        auto v = mb.try_recv();
        ASSERT_TRUE(v.has_value());
        EXPECT_EQ(*v, 7);
        EXPECT_TRUE(mb.empty());
    });
    eng.run();
}

TEST(Mailbox, MultipleReceiversEachGetOne) {
    Engine eng;
    Mailbox<int> mb;
    std::vector<int> got;
    for (int i = 0; i < 3; ++i)
        eng.spawn("r" + std::to_string(i), [&](Process& p) { got.push_back(mb.recv(p)); });
    eng.spawn("s", [&](Process& p) {
        p.delay(10);
        mb.send(1);
        mb.send(2);
        mb.send(3);
    });
    eng.run();
    std::sort(got.begin(), got.end());
    EXPECT_EQ(got, (std::vector<int>{1, 2, 3}));
}

TEST(SimMutex, MutualExclusionAndFifoFairness) {
    Engine eng;
    SimMutex m;
    std::vector<int> critical_order;
    for (int i = 0; i < 4; ++i)
        eng.spawn("p" + std::to_string(i), [&, i](Process& p) {
            p.delay(i);  // stagger arrival: 0,1,2,3
            m.lock(p);
            critical_order.push_back(i);
            p.delay(100);  // hold long enough that all others queue up
            m.unlock(p);
        });
    eng.run();
    EXPECT_EQ(critical_order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(SimMutex, TryLockFailsWhenHeld) {
    Engine eng;
    SimMutex m;
    eng.spawn("a", [&](Process& p) {
        m.lock(p);
        p.delay(100);
        m.unlock(p);
    });
    eng.spawn("b", [&](Process& p) {
        p.delay(50);
        EXPECT_FALSE(m.try_lock(p));
        p.delay(100);
        EXPECT_TRUE(m.try_lock(p));
        m.unlock(p);
    });
    eng.run();
}

TEST(SimMutex, UnlockByNonOwnerPanics) {
    Engine eng;
    SimMutex m;
    eng.spawn("a", [&](Process& p) {
        EXPECT_THROW(m.unlock(p), Panic);
        m.lock(p);
        m.unlock(p);
    });
    eng.run();
}

TEST(SimCondVar, WaitReleasesMutexAndReacquires) {
    Engine eng;
    SimMutex m;
    SimCondVar cv;
    bool ready = false;
    std::vector<std::string> order;
    eng.spawn("waiter", [&](Process& p) {
        m.lock(p);
        while (!ready) cv.wait(p, m);
        order.push_back("consumed");
        EXPECT_EQ(m.owner(), &p);
        m.unlock(p);
    });
    eng.spawn("producer", [&](Process& p) {
        p.delay(20);
        m.lock(p);  // must succeed: waiter released it inside wait()
        ready = true;
        order.push_back("produced");
        cv.notify_one();
        m.unlock(p);
    });
    eng.run();
    EXPECT_EQ(order, (std::vector<std::string>{"produced", "consumed"}));
}

TEST(SimCondVar, NotifyAllWakesEveryWaiter) {
    Engine eng;
    SimMutex m;
    SimCondVar cv;
    bool go = false;
    int done = 0;
    for (int i = 0; i < 5; ++i)
        eng.spawn("w" + std::to_string(i), [&](Process& p) {
            m.lock(p);
            while (!go) cv.wait(p, m);
            ++done;
            m.unlock(p);
        });
    eng.spawn("n", [&](Process& p) {
        p.delay(10);
        m.lock(p);
        go = true;
        cv.notify_all();
        m.unlock(p);
    });
    eng.run();
    EXPECT_EQ(done, 5);
}

TEST(SimBarrier, AllArriveBeforeAnyPasses) {
    Engine eng;
    SimBarrier bar(4);
    std::vector<SimTime> pass_times;
    for (int i = 0; i < 4; ++i)
        eng.spawn("p" + std::to_string(i), [&, i](Process& p) {
            p.delay(i * 100);  // last arrives at 300
            bar.arrive_and_wait(p);
            pass_times.push_back(p.now());
        });
    eng.run();
    ASSERT_EQ(pass_times.size(), 4u);
    for (SimTime t : pass_times) EXPECT_EQ(t, 300);
}

TEST(SimBarrier, ReusableAcrossRounds) {
    Engine eng;
    SimBarrier bar(3);
    int rounds_completed = 0;
    for (int i = 0; i < 3; ++i)
        eng.spawn("p" + std::to_string(i), [&, i](Process& p) {
            for (int r = 0; r < 5; ++r) {
                p.delay((i + 1) * (r + 1));
                bar.arrive_and_wait(p);
            }
            if (i == 0) rounds_completed = 5;
        });
    eng.run();
    EXPECT_EQ(rounds_completed, 5);
}

TEST(WaitQueue, WakeOneIsFifo) {
    Engine eng;
    WaitQueue q;
    std::vector<int> order;
    for (int i = 0; i < 3; ++i)
        eng.spawn("w" + std::to_string(i), [&, i](Process& p) {
            p.delay(i);
            q.park(p);
            order.push_back(i);
        });
    eng.spawn("waker", [&](Process& p) {
        p.delay(100);
        while (q.wake_one()) p.delay(10);
    });
    eng.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

}  // namespace
}  // namespace scimpi::sim
