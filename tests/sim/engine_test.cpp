#include "sim/engine.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/process.hpp"

namespace scimpi::sim {
namespace {

TEST(Engine, EmptyRunCompletesAtTimeZero) {
    Engine eng;
    eng.run();
    EXPECT_EQ(eng.now(), 0);
    EXPECT_EQ(eng.events_dispatched(), 0u);
}

TEST(Engine, SingleProcessRunsToCompletion) {
    Engine eng;
    bool ran = false;
    eng.spawn("p0", [&](Process& p) {
        EXPECT_EQ(p.now(), 0);
        ran = true;
    });
    eng.run();
    EXPECT_TRUE(ran);
}

TEST(Engine, DelayAdvancesVirtualTime) {
    Engine eng;
    SimTime observed = -1;
    eng.spawn("p0", [&](Process& p) {
        p.delay(1500);
        observed = p.now();
    });
    eng.run();
    EXPECT_EQ(observed, 1500);
    EXPECT_EQ(eng.now(), 1500);
}

TEST(Engine, DelaysAccumulate) {
    Engine eng;
    eng.spawn("p0", [&](Process& p) {
        for (int i = 0; i < 10; ++i) p.delay(100);
        EXPECT_EQ(p.now(), 1000);
    });
    eng.run();
    EXPECT_EQ(eng.now(), 1000);
}

TEST(Engine, ProcessesInterleaveByTimestamp) {
    Engine eng;
    std::vector<std::string> order;
    eng.spawn("a", [&](Process& p) {
        order.push_back("a0");
        p.delay(200);
        order.push_back("a200");
    });
    eng.spawn("b", [&](Process& p) {
        order.push_back("b0");
        p.delay(100);
        order.push_back("b100");
        p.delay(200);
        order.push_back("b300");
    });
    eng.run();
    const std::vector<std::string> expected{"a0", "b0", "b100", "a200", "b300"};
    EXPECT_EQ(order, expected);
}

TEST(Engine, SameTimeEventsRunInScheduleOrder) {
    Engine eng;
    std::vector<int> order;
    for (int i = 0; i < 5; ++i)
        eng.spawn("p" + std::to_string(i), [&, i](Process& p) {
            p.delay(50);
            order.push_back(i);
        });
    eng.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Engine, YieldReschedulesBehindPeers) {
    Engine eng;
    std::vector<std::string> order;
    eng.spawn("a", [&](Process& p) {
        order.push_back("a-pre");
        p.yield();
        order.push_back("a-post");
    });
    eng.spawn("b", [&](Process&) { order.push_back("b"); });
    eng.run();
    EXPECT_EQ(order, (std::vector<std::string>{"a-pre", "b", "a-post"}));
}

TEST(Engine, BlockAndWakeTransfersControl) {
    Engine eng;
    std::vector<std::string> order;
    Process& sleeper = eng.spawn("sleeper", [&](Process& p) {
        order.push_back("sleeping");
        p.block();
        order.push_back("woken");
        EXPECT_EQ(p.now(), 400);
    });
    eng.spawn("waker", [&](Process& p) {
        p.delay(400);
        order.push_back("waking");
        p.engine().wake(sleeper);
    });
    eng.run();
    EXPECT_EQ(order, (std::vector<std::string>{"sleeping", "waking", "woken"}));
}

TEST(Engine, DeadlockIsDetectedAndNamed) {
    Engine eng;
    eng.spawn("stuck-proc", [](Process& p) { p.block(); });
    try {
        eng.run();
        FAIL() << "expected Panic";
    } catch (const Panic& e) {
        EXPECT_NE(std::string(e.what()).find("stuck-proc"), std::string::npos);
    }
}

TEST(Engine, ProcessExceptionPropagatesWithName) {
    Engine eng;
    eng.spawn("ok", [](Process& p) { p.delay(10); });
    eng.spawn("thrower", [](Process& p) {
        p.delay(5);
        throw std::runtime_error("boom");
    });
    try {
        eng.run();
        FAIL() << "expected Panic";
    } catch (const Panic& e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("thrower"), std::string::npos);
        EXPECT_NE(what.find("boom"), std::string::npos);
    }
}

TEST(Engine, SpawnDuringRunStartsAtCurrentTime) {
    Engine eng;
    SimTime child_start = -1;
    eng.spawn("parent", [&](Process& p) {
        p.delay(300);
        p.engine().spawn("child", [&](Process& c) { child_start = c.now(); });
        p.delay(10);
    });
    eng.run();
    EXPECT_EQ(child_start, 300);
}

TEST(Engine, ManyProcessesAndEventsStayConsistent) {
    Engine eng;
    constexpr int kProcs = 32;
    constexpr int kSteps = 200;
    std::vector<SimTime> finish(kProcs, 0);
    for (int i = 0; i < kProcs; ++i)
        eng.spawn("p" + std::to_string(i), [&, i](Process& p) {
            for (int s = 0; s < kSteps; ++s) p.delay(1 + (i % 7));
            finish[i] = p.now();
        });
    eng.run();
    for (int i = 0; i < kProcs; ++i)
        EXPECT_EQ(finish[i], static_cast<SimTime>(kSteps) * (1 + (i % 7)));
    EXPECT_GE(eng.events_dispatched(), static_cast<std::uint64_t>(kProcs) * kSteps);
}

TEST(Engine, DeterministicAcrossRuns) {
    auto run_once = [] {
        Engine eng;
        std::vector<int> order;
        for (int i = 0; i < 8; ++i)
            eng.spawn("p" + std::to_string(i), [&, i](Process& p) {
                p.delay((i * 37) % 11);
                order.push_back(i);
                p.delay((i * 13) % 7);
                order.push_back(i + 100);
            });
        eng.run();
        return order;
    };
    EXPECT_EQ(run_once(), run_once());
}

TEST(Engine, DestructorUnwindsBlockedProcesses) {
    // No run() at all: spawned threads never started. And with run(): a
    // deadlocked engine must still be destructible after the panic.
    auto eng = std::make_unique<Engine>();
    eng->spawn("never-run", [](Process& p) { p.block(); });
    eng.reset();  // must not hang
    SUCCEED();
}

TEST(Engine, DelayFromForeignThreadPanics) {
    Engine eng;
    Process* other = nullptr;
    eng.spawn("a", [&](Process& p) {
        other = &p;
        p.delay(100);
    });
    eng.spawn("b", [&](Process&) {
        ASSERT_NE(other, nullptr);
        EXPECT_THROW(other->delay(1), Panic);
    });
    eng.run();
}

}  // namespace
}  // namespace scimpi::sim
