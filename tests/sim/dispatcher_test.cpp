#include "sim/dispatcher.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "sim/sync.hpp"

namespace scimpi::sim {
namespace {

TEST(Dispatcher, RunsCallbacksAtRequestedTimes) {
    Engine eng;
    Dispatcher disp(eng);
    std::vector<SimTime> fired;
    eng.spawn("driver", [&](Process& p) {
        disp.at(500, [&, &e = eng] { fired.push_back(e.now()); });
        disp.at(100, [&, &e = eng] { fired.push_back(e.now()); });
        disp.after(250, [&, &e = eng] { fired.push_back(e.now()); });
        p.delay(1000);
    });
    eng.run();
    EXPECT_EQ(fired, (std::vector<SimTime>{100, 250, 500}));
}

TEST(Dispatcher, EqualTimesRunInInsertionOrder) {
    Engine eng;
    Dispatcher disp(eng);
    std::vector<int> order;
    eng.spawn("driver", [&](Process& p) {
        for (int i = 0; i < 5; ++i) disp.at(42, [&, i] { order.push_back(i); });
        p.delay(100);
    });
    eng.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Dispatcher, EarlierItemInsertedAfterLaterItemStillFiresFirst) {
    Engine eng;
    Dispatcher disp(eng);
    std::vector<std::string> order;
    eng.spawn("driver", [&](Process& p) {
        disp.at(900, [&] { order.push_back("late"); });
        p.delay(10);
        disp.at(20, [&] { order.push_back("early"); });
        p.delay(2000);
    });
    eng.run();
    EXPECT_EQ(order, (std::vector<std::string>{"early", "late"}));
}

TEST(Dispatcher, DeliversIntoMailboxWakingReceiver) {
    Engine eng;
    Dispatcher disp(eng);
    Mailbox<int> mb;
    SimTime recv_time = -1;
    eng.spawn("receiver", [&](Process& p) {
        const int v = mb.recv(p);
        EXPECT_EQ(v, 99);
        recv_time = p.now();
    });
    eng.spawn("sender", [&](Process& p) {
        p.delay(300);
        disp.after(700, [&mb] { mb.send(99); });
    });
    eng.run();
    EXPECT_EQ(recv_time, 1000);
}

TEST(Dispatcher, IdleDispatcherDoesNotDeadlockEngine) {
    Engine eng;
    Dispatcher disp(eng);
    eng.spawn("p", [](Process& p) { p.delay(5); });
    eng.run();  // must terminate despite the forever-blocked daemon
    EXPECT_EQ(eng.now(), 5);
}

TEST(Dispatcher, CallbackAfterAllUserProcessesStillRuns) {
    Engine eng;
    Dispatcher disp(eng);
    bool ran = false;
    eng.spawn("p", [&](Process& p) {
        disp.at(10'000, [&] { ran = true; });
        p.delay(1);
    });
    eng.run();
    EXPECT_TRUE(ran);
    EXPECT_EQ(eng.now(), 10'000);
}

TEST(Dispatcher, ManyInterleavedCallbacksStaySorted) {
    Engine eng;
    Dispatcher disp(eng);
    std::vector<SimTime> fired;
    eng.spawn("driver", [&](Process& p) {
        // Insert in a scrambled order.
        for (SimTime t : {70, 10, 50, 30, 90, 20, 80, 40, 60, 100})
            disp.at(t, [&, &e = eng] { fired.push_back(e.now()); });
        p.delay(200);
    });
    eng.run();
    for (std::size_t i = 1; i < fired.size(); ++i) EXPECT_LE(fired[i - 1], fired[i]);
    EXPECT_EQ(fired.size(), 10u);
}

}  // namespace
}  // namespace scimpi::sim
