# Collective-engine smoke: the coll_tour example under scimpi-check (via the
# SCIMPI_CHECK environment variable) must complete with zero violations, and
# its stats JSON must show traffic actually routed through the collective
# segments (nonzero coll.seg_bytes) with no p2p fallbacks. A second run with
# the engine forced to p2p must still verify, proving both paths agree.
#
# Expects: COLL_TOUR (example binary), OUT_DIR.
set(stats_file "${OUT_DIR}/smoke_coll_stats.json")
file(REMOVE "${stats_file}")

# 1. Checked segment run: clean tour, zero violations, segment counters live.
execute_process(
  COMMAND ${CMAKE_COMMAND} -E env
          "SCIMPI_CHECK=1"
          "SCIMPI_STATS=1"
          "SCIMPI_STATS_FILE=${stats_file}"
          "${COLL_TOUR}"
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "coll_tour (checked) exited with ${rc}:\n${out}\n${err}")
endif()
if(NOT out MATCHES "scimpi-check: 0 violation")
  message(FATAL_ERROR "coll_tour did not report zero violations:\n${out}")
endif()
if(NOT EXISTS "${stats_file}")
  message(FATAL_ERROR "expected stats file was not written: ${stats_file}")
endif()
file(READ "${stats_file}" stats)
if(NOT stats MATCHES "\"coll.seg_bytes\": [1-9]")
  message(FATAL_ERROR "stats show no bytes through the collective segments:\n${stats}")
endif()
if(NOT stats MATCHES "\"coll.bcast.scatter_ag\": [1-9]")
  message(FATAL_ERROR "large bcast did not select scatter_ag:\n${stats}")
endif()
if(NOT stats MATCHES "\"coll.alltoall.spread\": [1-9]")
  message(FATAL_ERROR "alltoall did not select spread:\n${stats}")
endif()
if(stats MATCHES "\"coll.fallbacks\": [1-9]")
  message(FATAL_ERROR "fault-free tour took the p2p fallback:\n${stats}")
endif()

# 2. Seed-path run: SCIMPI_COLL-style override through --coll; the tour's
#    in-place verification proves the p2p algorithms produce the same data.
execute_process(COMMAND "${COLL_TOUR}" --coll p2p RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "coll_tour --coll p2p exited with ${rc}")
endif()
