// Structural checker for the observability smoke test, two modes:
//
//   obs_check flows <trace.json>    every flow start ("ph": "s") has exactly
//                                   one matching finish ("ph": "f") with the
//                                   same id, at least one flow exists, and
//                                   the trace names its rank tracks via
//                                   "thread_name" metadata events.
//   obs_check profile <stats.json>  every per-rank profile's state times sum
//                                   to its total_ns, and every total_ns
//                                   equals the report's sim_time_ns (the
//                                   "every tick attributed" invariant).
//   obs_check record <stats.json>   RunReport v4 flight-recorder layout:
//                                   schema_version >= 4, record_cadence_ns
//                                   > 0, a non-empty timeseries array whose
//                                   series each have len(t) == len(v) and a
//                                   strictly increasing time axis, and a
//                                   hotspots array.
//
// Both modes scan the known single-event-per-line layout our own writers
// emit; they are validators for those writers, not general JSON parsers
// (json_check covers syntax).
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

namespace {

/// First "key": <integer> after position `from`; npos-sentinel via ok=false.
bool find_u64(const std::string& s, const char* key, std::size_t from,
              std::uint64_t& out) {
    const std::string needle = std::string("\"") + key + "\": ";
    const std::size_t k = s.find(needle, from);
    if (k == std::string::npos) return false;
    out = std::strtoull(s.c_str() + k + needle.size(), nullptr, 10);
    return true;
}

int check_flows(const std::string& text) {
    std::map<std::uint64_t, long> balance;  // id -> starts - finishes
    std::size_t starts = 0, finishes = 0;
    std::istringstream in(text);
    std::string line;
    bool named_rank0 = false;
    while (std::getline(in, line)) {
        if (line.find("\"thread_name\"") != std::string::npos &&
            line.find("\"rank 0\"") != std::string::npos)
            named_rank0 = true;
        const bool is_start = line.find("\"ph\": \"s\"") != std::string::npos;
        const bool is_finish = line.find("\"ph\": \"f\"") != std::string::npos;
        if (!is_start && !is_finish) continue;
        std::uint64_t id = 0;
        if (!find_u64(line, "id", 0, id)) {
            std::fprintf(stderr, "obs_check: flow event without id: %s\n",
                         line.c_str());
            return 1;
        }
        balance[id] += is_start ? 1 : -1;
        (is_start ? starts : finishes)++;
    }
    if (starts == 0) {
        std::fprintf(stderr, "obs_check: trace contains no flow events\n");
        return 1;
    }
    for (const auto& [id, diff] : balance) {
        if (diff != 0) {
            std::fprintf(stderr,
                         "obs_check: flow id %llu has %ld unmatched %s\n",
                         static_cast<unsigned long long>(id), diff > 0 ? diff : -diff,
                         diff > 0 ? "start(s)" : "finish(es)");
            return 1;
        }
    }
    if (!named_rank0) {
        std::fprintf(stderr,
                     "obs_check: no thread_name metadata naming \"rank 0\"\n");
        return 1;
    }
    std::printf("obs_check: %zu flows matched, %zu ids\n", starts,
                balance.size());
    return 0;
}

int check_profile(const std::string& text) {
    std::uint64_t sim_time_ns = 0;
    if (!find_u64(text, "sim_time_ns", 0, sim_time_ns)) {
        std::fprintf(stderr, "obs_check: stats report lacks sim_time_ns\n");
        return 1;
    }
    std::istringstream in(text);
    std::string line;
    int profiles = 0;
    while (std::getline(in, line)) {
        std::uint64_t rank = 0, total = 0;
        if (!find_u64(line, "rank", 0, rank) ||
            !find_u64(line, "total_ns", 0, total))
            continue;  // not a profile row
        const std::size_t states = line.find("\"states\": {");
        if (states == std::string::npos) continue;
        // Sum every `"state": N` entry inside the states object.
        std::uint64_t sum = 0;
        const std::size_t end = line.find('}', states);
        for (std::size_t p = line.find(": ", states + 11);
             p != std::string::npos && p < end; p = line.find(": ", p + 1))
            sum += std::strtoull(line.c_str() + p + 2, nullptr, 10);
        ++profiles;
        if (sum != total) {
            std::fprintf(stderr,
                         "obs_check: rank %llu states sum %llu != total_ns %llu\n",
                         static_cast<unsigned long long>(rank),
                         static_cast<unsigned long long>(sum),
                         static_cast<unsigned long long>(total));
            return 1;
        }
        if (total != sim_time_ns) {
            std::fprintf(stderr,
                         "obs_check: rank %llu total_ns %llu != sim_time_ns %llu\n",
                         static_cast<unsigned long long>(rank),
                         static_cast<unsigned long long>(total),
                         static_cast<unsigned long long>(sim_time_ns));
            return 1;
        }
    }
    if (profiles == 0) {
        std::fprintf(stderr, "obs_check: stats report has no rank profiles\n");
        return 1;
    }
    std::printf("obs_check: %d rank profiles attribute all of %llu ns\n",
                profiles, static_cast<unsigned long long>(sim_time_ns));
    return 0;
}

/// Parse the bracketed numeric array starting at text[open] == '['; returns
/// the values and the index one past the closing ']'.
std::vector<double> parse_array(const std::string& text, std::size_t open,
                                std::size_t* end_out) {
    std::vector<double> vals;
    std::size_t p = open + 1;
    const std::size_t close = text.find(']', open);
    while (p < close) {
        char* end = nullptr;
        const double v = std::strtod(text.c_str() + p, &end);
        const auto consumed = static_cast<std::size_t>(end - text.c_str());
        if (consumed == p) break;  // no number (empty array)
        vals.push_back(v);
        p = text.find(',', consumed);
        if (p == std::string::npos || p > close) break;
        ++p;
    }
    if (end_out != nullptr)
        *end_out = close == std::string::npos ? text.size() : close + 1;
    return vals;
}

int check_record(const std::string& text) {
    std::uint64_t schema = 0;
    if (!find_u64(text, "schema_version", 0, schema) || schema < 4) {
        std::fprintf(stderr,
                     "obs_check: schema_version %llu < 4 (flight recorder "
                     "needs v4)\n",
                     static_cast<unsigned long long>(schema));
        return 1;
    }
    std::uint64_t cadence = 0;
    if (!find_u64(text, "record_cadence_ns", 0, cadence) || cadence == 0) {
        std::fprintf(stderr, "obs_check: record_cadence_ns missing or 0 "
                             "(recorder was off)\n");
        return 1;
    }
    if (text.find("\"hotspots\": [") == std::string::npos) {
        std::fprintf(stderr, "obs_check: report lacks a hotspots array\n");
        return 1;
    }
    // Every series line our writer emits:  {"name": "...", "t": [...], "v": [...]}
    std::istringstream in(text);
    std::string line;
    int series = 0;
    std::size_t samples = 0;
    while (std::getline(in, line)) {
        const std::size_t name = line.find("\"name\": \"");
        const std::size_t t_open = line.find("\"t\": [");
        const std::size_t v_open = line.find("\"v\": [");
        if (name == std::string::npos || t_open == std::string::npos ||
            v_open == std::string::npos)
            continue;
        const std::size_t name_end = line.find('"', name + 9);
        const std::string sname = line.substr(name + 9, name_end - (name + 9));
        const std::vector<double> t = parse_array(line, t_open + 5, nullptr);
        const std::vector<double> v = parse_array(line, v_open + 5, nullptr);
        if (t.size() != v.size()) {
            std::fprintf(stderr,
                         "obs_check: series %s has %zu times but %zu values\n",
                         sname.c_str(), t.size(), v.size());
            return 1;
        }
        for (std::size_t i = 1; i < t.size(); ++i) {
            if (t[i] <= t[i - 1]) {
                std::fprintf(stderr,
                             "obs_check: series %s time axis not strictly "
                             "increasing at index %zu\n",
                             sname.c_str(), i);
                return 1;
            }
        }
        ++series;
        samples += t.size();
    }
    if (series == 0 || samples == 0) {
        std::fprintf(stderr, "obs_check: report has no non-empty timeseries\n");
        return 1;
    }
    std::printf("obs_check: %d series, %zu samples, cadence %llu ns\n", series,
                samples, static_cast<unsigned long long>(cadence));
    return 0;
}

}  // namespace

int main(int argc, char** argv) {
    if (argc != 3 || (std::strcmp(argv[1], "flows") != 0 &&
                      std::strcmp(argv[1], "profile") != 0 &&
                      std::strcmp(argv[1], "record") != 0)) {
        std::fprintf(stderr, "usage: obs_check flows|profile|record FILE\n");
        return 2;
    }
    std::ifstream in(argv[2], std::ios::binary);
    if (!in.good()) {
        std::fprintf(stderr, "obs_check: cannot open %s\n", argv[2]);
        return 1;
    }
    std::stringstream ss;
    ss << in.rdbuf();
    const std::string text = ss.str();
    if (std::strcmp(argv[1], "flows") == 0) return check_flows(text);
    if (std::strcmp(argv[1], "profile") == 0) return check_profile(text);
    return check_record(text);
}
