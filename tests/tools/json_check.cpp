// Tiny JSON well-formedness checker used by the observability smoke test:
// exit 0 when the file parses, 1 otherwise.
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "support/mini_json.hpp"

int main(int argc, char** argv) {
    if (argc != 2) {
        std::fprintf(stderr, "usage: json_check FILE\n");
        return 2;
    }
    std::ifstream in(argv[1], std::ios::binary);
    if (!in.good()) {
        std::fprintf(stderr, "json_check: cannot open %s\n", argv[1]);
        return 1;
    }
    std::stringstream ss;
    ss << in.rdbuf();
    const std::string text = ss.str();
    if (!scimpi::testsupport::json_valid(text)) {
        std::fprintf(stderr, "json_check: %s is not valid JSON (%zu bytes)\n",
                     argv[1], text.size());
        return 1;
    }
    return 0;
}
