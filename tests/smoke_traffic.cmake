# Heavy-traffic smoke: the halo and RPC generators under SCIMPI_CHECK=1
# must run to completion with zero scimpi-check violations and report their
# latency percentiles from the obs::Histogram. The halo run also exercises
# the async-progress daemon path.
#
# Expects: BENCH_TRAFFIC (binary), OUT_DIR.

function(run_traffic label)
  execute_process(
    COMMAND ${CMAKE_COMMAND} -E env SCIMPI_CHECK=1 "${BENCH_TRAFFIC}" ${ARGN}
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE out ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "${label} exited with ${rc}:\n${out}\n${err}")
  endif()
  if(NOT out MATCHES "p50=[0-9]+ ns p90=[0-9]+ ns p99=[0-9]+ ns")
    message(FATAL_ERROR "${label} printed no histogram percentiles:\n${out}")
  endif()
  if(NOT out MATCHES "scimpi-check: 0 violations")
    message(FATAL_ERROR "${label} reported violations:\n${out}\n${err}")
  endif()
  message(STATUS "${label}: ok")
endfunction()

run_traffic("traffic/halo" --gen halo --ranks 8 --iters 4)
run_traffic("traffic/halo-async" --gen halo --ranks 8 --iters 4 --async)
run_traffic("traffic/rpc" --gen rpc --ranks 4 --iters 4)
