# Observability smoke test: run the quickstart example with stats collection
# and tracing enabled via environment variables, then check that both emitted
# files are well-formed JSON.
#
# Expects: QUICKSTART (example binary), JSON_CHECK (checker binary), OUT_DIR.
set(stats_file "${OUT_DIR}/smoke_quickstart_stats.json")
set(trace_file "${OUT_DIR}/smoke_quickstart.trace.json")
file(REMOVE "${stats_file}" "${trace_file}")

execute_process(
  COMMAND ${CMAKE_COMMAND} -E env
          "SCIMPI_STATS=1"
          "SCIMPI_STATS_FILE=${stats_file}"
          "SCIMPI_TRACE_FILE=${trace_file}"
          "${QUICKSTART}"
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "quickstart exited with ${rc}")
endif()

foreach(f IN ITEMS "${stats_file}" "${trace_file}")
  if(NOT EXISTS "${f}")
    message(FATAL_ERROR "expected output file was not written: ${f}")
  endif()
  execute_process(COMMAND "${JSON_CHECK}" "${f}" RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "not valid JSON: ${f}")
  endif()
endforeach()
