// Reproduction-shape regression tests: each test pins one qualitative claim
// of the paper against the simulator, so refactoring the models cannot
// silently lose a reproduced result. These are the "who wins, by roughly
// what factor, where are the crossovers" facts of DESIGN.md section 5.
#include <gtest/gtest.h>

#include "../../bench/common.hpp"

namespace scimpi::bench {
namespace {

// ---- Figure 7 -------------------------------------------------------------

TEST(Fig7Shape, GenericBeatsFFOnlyAtEightByteBlocksInterNode) {
    // "Only for the case of 8 byte-blocksizes, the generic technique proves
    // to be faster for inter-node communication."
    EXPECT_GT(noncontig_bandwidth(true, 8, false),
              noncontig_bandwidth(true, 8, true));
    EXPECT_LT(noncontig_bandwidth(true, 16, false),
              noncontig_bandwidth(true, 16, true));
    EXPECT_LT(noncontig_bandwidth(true, 64, false),
              noncontig_bandwidth(true, 64, true));
}

TEST(Fig7Shape, FFDeliversRoughlyTwiceGenericFrom16Bytes) {
    // "It delivers already twice the bandwidth of the generic algorithm for
    // a blocksize of 16 bytes and above."
    for (const std::size_t block : {16u, 64u, 256u, 4096u}) {
        const double ff = noncontig_bandwidth(true, block, true);
        const double gen = noncontig_bandwidth(true, block, false);
        EXPECT_GT(ff / gen, 1.15) << "block " << block;
    }
    EXPECT_GT(noncontig_bandwidth(true, 64, true) /
                  noncontig_bandwidth(true, 64, false),
              1.3);
}

TEST(Fig7Shape, FFReaches90PercentOfContiguousAt128Bytes) {
    // "...approximates the bandwidth for contiguous transfers, and already
    // reaches 90% of it for blocksizes of 128 byte."
    const double contig = noncontig_bandwidth(true, 0, true);
    EXPECT_GT(noncontig_bandwidth(true, 128, true) / contig, 0.80);
    EXPECT_GT(noncontig_bandwidth(true, 1024, true) / contig, 0.95);
}

TEST(Fig7Shape, FFBandwidthRisesMonotonicallyWithBlockSize) {
    double prev = 0.0;
    for (std::size_t block = 8; block <= 64_KiB; block *= 4) {
        const double bw = noncontig_bandwidth(true, block, true);
        EXPECT_GT(bw, prev * 0.98) << "block " << block;
        prev = bw;
    }
}

TEST(Fig7Shape, IntraNodeShmShowsTheSamePattern) {
    // Section 6: everything carries over to intra-node shared memory.
    const double contig = noncontig_bandwidth(false, 0, true);
    const double ff = noncontig_bandwidth(false, 2048, true);
    const double gen = noncontig_bandwidth(false, 2048, false);
    EXPECT_GT(ff, gen);
    EXPECT_GT(ff / contig, 0.9);
}

// ---- Figure 9 / Section 4.2 ------------------------------------------------

TEST(Fig9Shape, RemoteReadLatencyExceedsWriteLatency) {
    const SparseResult put = sparse_osc(true, true, 8);
    const SparseResult get = sparse_osc(true, false, 8);
    EXPECT_GT(get.latency_us, 2.0 * put.latency_us);
}

TEST(Fig9Shape, PrivateWindowsPayTheEmulationPenalty) {
    for (const bool is_put : {true, false}) {
        const SparseResult shared = sparse_osc(true, is_put, 64);
        const SparseResult priv = sparse_osc(false, is_put, 64);
        EXPECT_GT(priv.latency_us, shared.latency_us)
            << (is_put ? "put" : "get");
    }
}

TEST(Fig9Shape, LargeGetsConvergeSharedAndPrivate) {
    // "The bandwidth numbers for accessing remote private memory and reading
    // remote shared memory become very similar for bigger access sizes as
    // they are all performed via message exchange."
    const SparseResult shared = sparse_osc(true, false, 16_KiB);
    const SparseResult priv = sparse_osc(false, false, 16_KiB);
    EXPECT_NEAR(shared.bandwidth, priv.bandwidth, shared.bandwidth * 0.05);
}

TEST(Fig9Shape, SmallGetsDoNotConverge) {
    const SparseResult shared = sparse_osc(true, false, 64);
    const SparseResult priv = sparse_osc(false, false, 64);
    EXPECT_GT(shared.bandwidth, 2.0 * priv.bandwidth);
}

// ---- Figure 12 / Table 2 ----------------------------------------------------

TEST(Fig12Shape, PerNodeBandwidthFlatThenDeclines) {
    // "a constant peak bandwidth ... for up to 5 nodes. For more than 5
    // nodes, the single SCI ringlet does not supply sufficient bandwidth."
    const double at2 = scaling_put(8, 2, 1, 64_KiB, 1_MiB).min_bw;
    const double at4 = scaling_put(8, 4, 3, 64_KiB, 1_MiB).min_bw;
    const double at8 = scaling_put(8, 8, 7, 64_KiB, 1_MiB).min_bw;
    EXPECT_NEAR(at2, at4, at2 * 0.25);
    EXPECT_LT(at8, 0.6 * at2);
    // Paper: 71.8 MiB/s for 8 nodes (we land within ~20%).
    EXPECT_NEAR(at8, 71.8, 15.0);
}

TEST(Table2Shape, RingEfficiencyStaysHighUnderSaturation) {
    // Paper: efficiency 79.3% at load 152.5% — "little congestion".
    const ScalingResult r = scaling_put(8, 8, 7, 64_KiB, 1_MiB);
    EXPECT_GT(r.efficiency, 0.70);
    EXPECT_LT(r.efficiency, 1.0);
}

TEST(Table2Shape, LinkFrequencyScalesWorstCaseLinearly) {
    // "The measured bandwidth for the worst case scenario increased linearly
    // with the ring bandwidth."
    const ScalingResult a = scaling_put(8, 8, 7, 64_KiB, 1_MiB, 166.0);
    const ScalingResult b = scaling_put(8, 8, 7, 64_KiB, 1_MiB, 200.0);
    const double bw_ratio = b.accumulated / a.accumulated;
    const double freq_ratio = 200.0 / 166.0;
    EXPECT_NEAR(bw_ratio, freq_ratio, 0.05);
}

TEST(Table2Shape, NeighbourPatternDoesNotContend) {
    // "for the minimal segment utilization, the bandwidth per node remains
    // constant" regardless of how many nodes are active.
    const double at4 = scaling_put(8, 4, 1, 64_KiB, 1_MiB).min_bw;
    const double at8 = scaling_put(8, 8, 1, 64_KiB, 1_MiB).min_bw;
    EXPECT_NEAR(at4, at8, at4 * 0.02);
}

}  // namespace
}  // namespace scimpi::bench
