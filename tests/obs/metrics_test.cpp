#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "support/mini_json.hpp"

namespace scimpi::obs {
namespace {

TEST(MetricsRegistry, DisabledCountersHaveNoSideEffects) {
    MetricsRegistry m;  // disabled by default
    Counter& c = m.counter("x.count");
    Gauge& g = m.gauge("x.level");
    c.inc();
    c.add(100);
    g.set(7.0);
    g.add(3.0);
    EXPECT_EQ(c.value(), 0u);
    EXPECT_EQ(g.value(), 0.0);
    EXPECT_EQ(g.max(), 0.0);
    EXPECT_EQ(m.value("x.count"), 0u);
}

TEST(MetricsRegistry, EnabledCountersAccumulate) {
    MetricsRegistry m;
    m.enable();
    Counter& c = m.counter("x.count");
    c.inc();
    c.add(41);
    EXPECT_EQ(c.value(), 42u);
    EXPECT_EQ(m.value("x.count"), 42u);
    EXPECT_EQ(m.value("never.registered"), 0u);
}

TEST(MetricsRegistry, FindOrCreateReturnsStableHandles) {
    MetricsRegistry m;
    m.enable();
    Counter* first = &m.counter("a");
    for (int i = 0; i < 100; ++i) m.counter("filler." + std::to_string(i));
    EXPECT_EQ(first, &m.counter("a"));
    first->inc();
    EXPECT_EQ(m.value("a"), 1u);
}

TEST(MetricsRegistry, GaugeTracksMaximum) {
    MetricsRegistry m;
    m.enable();
    Gauge& g = m.gauge("level");
    g.set(2.0);
    g.set(9.0);
    g.set(4.0);
    EXPECT_EQ(g.value(), 4.0);
    EXPECT_EQ(g.max(), 9.0);
}

TEST(MetricsRegistry, ResetZeroesValuesButKeepsHandles) {
    MetricsRegistry m;
    m.enable();
    Counter& c = m.counter("a");
    Gauge& g = m.gauge("b");
    c.add(5);
    g.set(5.0);
    m.reset();
    EXPECT_EQ(c.value(), 0u);
    EXPECT_EQ(g.max(), 0.0);
    c.inc();  // same handle still wired to the registry
    EXPECT_EQ(m.value("a"), 1u);
}

TEST(MetricsRegistry, SnapshotIsSortedByName) {
    MetricsRegistry m;
    m.enable();
    m.counter("zeta").add(1);
    m.counter("alpha").add(2);
    const auto snap = m.counters();
    ASSERT_EQ(snap.size(), 2u);
    EXPECT_EQ(snap[0].first, "alpha");
    EXPECT_EQ(snap[1].first, "zeta");
}

TEST(MetricsRegistry, LifecycleAcrossResetKeepsHandlesAndRezeroesGauges) {
    // The cluster reset/re-init contract: modules resolve handles once (at
    // construction) and keep incrementing through them across reset().
    MetricsRegistry m;
    m.enable();
    Counter* c = &m.counter("mod.events");
    Gauge* g = &m.gauge("mod.depth");
    Histogram* h = &m.histogram("mod.latency_ns");
    c->add(7);
    g->set(9.0);
    h->record(128);

    m.reset();
    // Handles are still the registry's slots (node-based storage)...
    EXPECT_EQ(c, &m.counter("mod.events"));
    EXPECT_EQ(g, &m.gauge("mod.depth"));
    EXPECT_EQ(h, &m.histogram("mod.latency_ns"));
    // ...and every value (including the gauge high-water mark) re-zeroed.
    EXPECT_EQ(c->value(), 0u);
    EXPECT_EQ(g->value(), 0.0);
    EXPECT_EQ(g->max(), 0.0);
    EXPECT_EQ(h->count(), 0u);

    // A second "run" through the same handles behaves like the first.
    c->inc();
    g->set(3.0);
    h->record(64);
    EXPECT_EQ(m.value("mod.events"), 1u);
    EXPECT_EQ(g->max(), 3.0);
    EXPECT_EQ(h->count(), 1u);
}

TEST(MetricsRegistry, InternedNamesDoNotLeakOrCollideAcrossResets) {
    MetricsRegistry m;
    m.enable();
    for (int round = 0; round < 3; ++round) {
        // Re-registering the same names every "re-init" must find the
        // existing slots, not grow the registry (no interning leak).
        m.counter("a.count").inc();
        m.counter("b.count").inc();
        m.gauge("a.level").set(1.0);
        m.histogram("a.hist").record(1);
        EXPECT_EQ(m.counters().size(), 2u) << "round " << round;
        EXPECT_EQ(m.gauge_maxima().size(), 1u) << "round " << round;
        EXPECT_EQ(m.histograms().size(), 1u) << "round " << round;
        // Prefix-sharing names stay distinct slots (no collision).
        EXPECT_NE(&m.counter("a.count"), &m.counter("b.count"));
        m.reset();
        EXPECT_EQ(m.value("a.count"), 0u);
    }
}

TEST(MetricsRegistry, FreshRegistriesPerClusterDoNotAlias) {
    // Two clusters in sequence (re-init) own independent registries: same
    // names, different slots, no cross-talk.
    MetricsRegistry first;
    first.enable();
    Counter* c1 = &first.counter("x");
    c1->add(5);
    {
        MetricsRegistry second;
        second.enable();
        Counter* c2 = &second.counter("x");
        EXPECT_NE(c1, c2);
        c2->add(2);
        EXPECT_EQ(second.value("x"), 2u);
    }
    EXPECT_EQ(first.value("x"), 5u);  // unaffected by the second's lifetime
}

TEST(JsonEscape, EscapesQuotesBackslashesAndControlChars) {
    std::string out;
    json_escape(out, "a\"b\\c\n\t\x01z");
    EXPECT_EQ(out, "a\\\"b\\\\c\\n\\t\\u0001z");
}

TEST(RunReport, ToJsonIsValidEvenWithHostileNames) {
    MetricsRegistry m;
    m.enable();
    m.counter("weird \"name\"\\with\x02junk").add(3);
    m.gauge("g\nauge").set(1.5);

    RunReport r;
    r.world = 4;
    r.nodes = 2;
    r.sim_seconds = 0.25;
    r.events_dispatched = 99;
    r.stats_enabled = true;
    r.counters = m.counters();
    r.gauges = m.gauge_maxima();
    r.links.push_back({0, 100, 120, 10});

    const std::string json = r.to_json();
    EXPECT_TRUE(testsupport::json_valid(json)) << json;
    EXPECT_NE(json.find("\\\"name\\\""), std::string::npos);
    EXPECT_EQ(r.counter("weird \"name\"\\with\x02junk"), 3u);
    EXPECT_EQ(r.gauge("g\nauge"), 1.5);
    EXPECT_EQ(r.counter("absent"), 0u);
}

TEST(RunReport, WriteJsonRoundTripsThroughAFile) {
    RunReport r;
    r.world = 1;
    r.nodes = 1;
    const std::string path = ::testing::TempDir() + "/scimpi_report.json";
    ASSERT_TRUE(r.write_json(path).is_ok());
    std::ifstream in(path);
    std::stringstream ss;
    ss << in.rdbuf();
    EXPECT_TRUE(testsupport::json_valid(ss.str()));
    std::remove(path.c_str());
}

TEST(RunReport, WriteJsonFailureNamesThePath) {
    RunReport r;
    const std::string path = "/nonexistent-dir-scimpi/report.json";
    const Status st = r.write_json(path);
    ASSERT_FALSE(st.is_ok());
    EXPECT_EQ(st.code(), Errc::io_error);
    EXPECT_NE(st.to_string().find(path), std::string::npos) << st.to_string();
}

}  // namespace
}  // namespace scimpi::obs
