// Critical-path extraction and event-log round-trip tests on hand-built
// graphs, where the expected attribution can be worked out on paper.
#include "obs/evgraph.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <numeric>
#include <sstream>
#include <string>

namespace scimpi::obs {
namespace {

std::uint64_t cat_sum(const CriticalPath& cp) {
    return std::accumulate(cp.cat_ns.begin(), cp.cat_ns.end(),
                           std::uint64_t{0});
}

TEST(CriticalPath, PureChainTilesEndTimeExactly) {
    EventGraph g;
    g.enable();
    g.set_track_rank(0, 0);
    g.node(0, EvCat::pack, "pack:stage", 100, 150);
    g.node(0, EvCat::pio, "pack:write", 150, 200);
    g.node(0, EvCat::dma, "rndv:write", 250, 300);  // 50 ns app gap before it

    const CriticalPath cp = critical_path(g, 300);
    EXPECT_EQ(cp.total_ns, 300u);
    EXPECT_EQ(cat_sum(cp), cp.total_ns);  // exact tiling, no loss
    EXPECT_EQ(cp.category(EvCat::pack), 50u);
    EXPECT_EQ(cp.category(EvCat::pio), 50u);
    EXPECT_EQ(cp.category(EvCat::dma), 50u);
    // The untracked gap [200,250] and the leading [0,100] are application
    // time on the only rank.
    EXPECT_EQ(cp.category(EvCat::compute), 150u);
    EXPECT_EQ(cp.rank_ns.at(0), 300u);
    EXPECT_EQ(cp.steps, 3u);
}

TEST(CriticalPath, LateSenderBlamedThroughTransparentWait) {
    // Receiver (track 0 / rank 0) blocks from t=100; the sender (track 1 /
    // rank 1) computes until 400, pushes at [400,450], the wire takes 10 ns.
    // Scalasca-style root-cause propagation: the 360 ns the receiver spent
    // waiting must land on the *sender's* compute, not on wait_recv.
    EventGraph g;
    g.enable();
    g.set_track_rank(0, 0);
    g.set_track_rank(1, 1);
    g.node(1, EvCat::compute, "app", 0, 400);
    const std::uint64_t push = g.node(1, EvCat::pio, "ctrl:eager", 400, 450);
    const std::uint64_t wait =
        g.node(0, EvCat::wait_recv, "wait:recv", 100, 460);
    g.edge(push, wait, EvCat::link, /*a=*/0, /*b=*/1);
    g.node(0, EvCat::proto, "recv:done", 460, 470);

    const CriticalPath cp = critical_path(g, 470);
    EXPECT_EQ(cat_sum(cp), cp.total_ns);
    EXPECT_EQ(cp.category(EvCat::wait_recv), 0u);  // transparent: chained through
    EXPECT_EQ(cp.category(EvCat::compute), 400u);
    EXPECT_EQ(cp.category(EvCat::pio), 50u);
    EXPECT_EQ(cp.category(EvCat::link), 10u);
    EXPECT_EQ(cp.link_ns.at("0->1"), 10u);
    EXPECT_EQ(cp.rank_ns.at(1), 450u);  // the delay originator carries the path
    EXPECT_EQ(cp.rank_ns.at(0), 10u);   // only its own completion handling
}

TEST(CriticalPath, BarrierWaitBlamedOnLastArrival) {
    // Rank 0 reaches the barrier at 100 and leaves at 325; rank 1 arrives at
    // 300. The wait_sync edge from the latest entry routes rank 0's stall to
    // rank 1's compute.
    EventGraph g;
    g.enable();
    g.set_track_rank(0, 0);
    g.set_track_rank(1, 1);
    g.node(0, EvCat::compute, "app", 0, 100);
    g.node(1, EvCat::compute, "app", 0, 300);
    const std::uint64_t entry =
        g.node(1, EvCat::proto, "coll:enter", 300, 300);
    const std::uint64_t exit0 =
        g.node(0, EvCat::coll, "barrier:dissemination", 100, 325);
    g.node(1, EvCat::coll, "barrier:dissemination", 300, 320);
    g.edge(entry, exit0, EvCat::wait_sync);

    const CriticalPath cp = critical_path(g, 325);
    EXPECT_EQ(cat_sum(cp), cp.total_ns);
    EXPECT_EQ(cp.category(EvCat::coll), 0u);  // containers are transparent
    EXPECT_EQ(cp.category(EvCat::wait_sync), 25u);
    EXPECT_EQ(cp.category(EvCat::compute), 300u);
    // Every attributed nanosecond belongs to the late rank.
    EXPECT_EQ(cp.rank_ns.at(1), 325u);
    EXPECT_EQ(cp.rank_ns.count(0), 0u);
}

TEST(CriticalPath, EmptyGraphIsAllApplicationTime) {
    EventGraph g;
    const CriticalPath cp = critical_path(g, 1234);
    EXPECT_EQ(cp.total_ns, 1234u);
    EXPECT_EQ(cp.category(EvCat::compute), 1234u);
    EXPECT_EQ(cat_sum(cp), 1234u);
}

TEST(CriticalPath, CapDropsNodesAndCountsThem) {
    EventGraph g;
    g.enable();
    g.set_cap(2);
    EXPECT_NE(g.node(0, EvCat::pio, "a", 0, 1), 0u);
    EXPECT_NE(g.node(0, EvCat::pio, "b", 1, 2), 0u);
    EXPECT_EQ(g.node(0, EvCat::pio, "c", 2, 3), 0u);
    EXPECT_EQ(g.dropped(), 1u);
    // Edges to/from dropped (id 0) nodes are silently discarded.
    g.edge(1, 0, EvCat::link, 0, 1);
    EXPECT_TRUE(g.edges().empty());
}

class EvLogFile : public ::testing::Test {
protected:
    std::string path_ = ::testing::TempDir() + "/evgraph_test.evlog";
    void TearDown() override { std::remove(path_.c_str()); }
};

TEST_F(EvLogFile, JsonlRoundTripPreservesTheAnalysis) {
    EventGraph g;
    g.enable();
    g.set_track_rank(0, 0);
    g.set_track_rank(1, 1);
    g.node(1, EvCat::compute, "app", 0, 400);
    const std::uint64_t push =
        g.node(1, EvCat::pio, "ctrl:eager", 400, 450, /*bytes=*/1024);
    const std::uint64_t wait =
        g.node(0, EvCat::wait_recv, "we\"ird\nname", 100, 460);
    g.edge(push, wait, EvCat::link, 0, 1);
    g.node(0, EvCat::proto, "recv:done", 460, 470);
    g.message(1, 0, 1024, 60);

    ASSERT_TRUE(g.write_jsonl(path_, 470).is_ok());
    auto loaded = EventGraph::load_jsonl(path_);
    ASSERT_TRUE(loaded.is_ok()) << loaded.status().to_string();
    const EvLogLoaded& log = loaded.value();

    EXPECT_FALSE(log.truncated);
    EXPECT_EQ(log.world, 2);
    EXPECT_EQ(log.sim_time_ns, 470u);
    ASSERT_EQ(log.graph.nodes().size(), g.nodes().size());
    for (std::size_t i = 0; i < g.nodes().size(); ++i) {
        const EvNode& a = g.nodes()[i];
        const EvNode& b = log.graph.nodes()[i];
        EXPECT_EQ(a.t0, b.t0) << i;
        EXPECT_EQ(a.t1, b.t1) << i;
        EXPECT_EQ(a.bytes, b.bytes) << i;
        EXPECT_EQ(a.prev, b.prev) << i;
        EXPECT_EQ(a.track, b.track) << i;
        EXPECT_EQ(a.cat, b.cat) << i;
        EXPECT_EQ(a.transparent, b.transparent) << i;
        EXPECT_EQ(g.name(a.name), log.graph.name(b.name)) << i;
    }
    ASSERT_EQ(log.graph.edges().size(), 1u);
    EXPECT_EQ(log.graph.edges()[0].from, push);
    EXPECT_EQ(log.graph.edges()[0].to, wait);
    EXPECT_EQ(log.graph.edges()[0].cat, EvCat::link);
    ASSERT_EQ(log.graph.messages().size(), 1u);
    EXPECT_EQ(log.graph.messages()[0].bytes, 1024u);
    EXPECT_EQ(log.graph.messages()[0].lat_sum_ns, 60u);

    // The loaded log yields the identical attribution.
    const CriticalPath before = critical_path(g, 470);
    const CriticalPath after =
        critical_path(log.graph, static_cast<SimTime>(log.sim_time_ns));
    EXPECT_EQ(before.cat_ns, after.cat_ns);
    EXPECT_EQ(before.link_ns, after.link_ns);
    EXPECT_EQ(before.rank_ns, after.rank_ns);
}

TEST_F(EvLogFile, TruncatedLogLoadsWithFlagAndStillTiles) {
    EventGraph g;
    g.enable();
    g.set_track_rank(0, 0);
    for (int i = 0; i < 50; ++i)
        g.node(0, EvCat::pio, "step", i * 10, i * 10 + 5);
    ASSERT_TRUE(g.write_jsonl(path_, 495).is_ok());

    // Tear the file mid-record, as a crashed writer would: keep 60% of it.
    std::string full;
    {
        std::ifstream in(path_, std::ios::binary);
        std::stringstream ss;
        ss << in.rdbuf();
        full = ss.str();
    }
    {
        std::ofstream out(path_, std::ios::binary | std::ios::trunc);
        out.write(full.data(),
                  static_cast<std::streamsize>(full.size() * 6 / 10));
    }

    auto loaded = EventGraph::load_jsonl(path_);
    ASSERT_TRUE(loaded.is_ok()) << loaded.status().to_string();
    EXPECT_TRUE(loaded.value().truncated);
    const std::size_t kept = loaded.value().graph.nodes().size();
    EXPECT_GT(kept, 0u);
    EXPECT_LT(kept, 50u);
    // No trailer: sim_time falls back to the latest loaded completion, and
    // the walk still tiles that span exactly.
    const auto end = static_cast<SimTime>(loaded.value().sim_time_ns);
    EXPECT_EQ(end, loaded.value().graph.nodes().back().t1);
    const CriticalPath cp = critical_path(loaded.value().graph, end);
    EXPECT_EQ(cat_sum(cp), cp.total_ns);
    EXPECT_EQ(cp.total_ns, static_cast<std::uint64_t>(end));
}

TEST_F(EvLogFile, NonEvlogFileIsRejected) {
    {
        std::ofstream out(path_);
        out << "{\"not\": \"an evlog\"}\n";
    }
    auto loaded = EventGraph::load_jsonl(path_);
    EXPECT_FALSE(loaded.is_ok());
}

}  // namespace
}  // namespace scimpi::obs
