// Integration tests for Cluster::stats_report() and counter-track tracing:
// deterministic scenarios with pinned protocol / RMA / pack counter values.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <vector>

#include "mpi/comm.hpp"
#include "mpi/rma/window.hpp"
#include "support/mini_json.hpp"

namespace scimpi::mpi {
namespace {

ClusterOptions two_nodes_with_stats() {
    ClusterOptions opt;
    opt.nodes = 2;
    opt.collect_stats = true;
    return opt;
}

/// One 1 KiB eager send plus one 64 KiB rendezvous send of a strided vector
/// (1024 blocks x 64 B = exactly one rendezvous chunk), rank 0 -> rank 1.
void p2p_workload(Comm& comm) {
    std::vector<double> eager(128, 1.0);  // 1 KiB: > short (128 B), <= eager
    const auto column = Datatype::vector(1024, 8, 16, Datatype::float64());
    std::vector<double> grid(1024 * 16, 0.0);
    if (comm.rank() == 0) {
        ASSERT_TRUE(comm.send(eager.data(), 128, Datatype::float64(), 1, 0));
        ASSERT_TRUE(comm.send(grid.data(), 1, column, 1, 1));
    } else {
        comm.recv(eager.data(), 128, Datatype::float64(), 0, 0);
        comm.recv(grid.data(), 1, column, 0, 1);
    }
}

TEST(StatsReport, PinsP2PProtocolAndPackCounters) {
    Cluster c(two_nodes_with_stats());
    c.run(p2p_workload);
    const obs::RunReport r = c.stats_report();

    EXPECT_TRUE(r.stats_enabled);
    EXPECT_EQ(r.world, 2);
    EXPECT_GT(r.sim_seconds, 0.0);
    EXPECT_GT(r.events_dispatched, 0u);

    EXPECT_EQ(r.counter("mpi.sends_eager"), 1u);
    EXPECT_EQ(r.counter("mpi.bytes_eager"), 1024u);
    EXPECT_EQ(r.counter("mpi.sends_rndv"), 1u);
    EXPECT_EQ(r.counter("mpi.bytes_rndv"), 64_KiB);
    EXPECT_GE(r.counter("mpi.sends_short"), 1u);  // finalize-barrier tokens

    // Sender ff-gathers the one rendezvous chunk straight into the remote
    // ring (1024 blocks); the receiver ff-unpacks it (no direct write).
    EXPECT_EQ(r.counter("pack.ff_packs"), 2u);
    EXPECT_EQ(r.counter("pack.ff_direct_writes"), 1u);
    EXPECT_EQ(r.counter("pack.ff_direct_blocks"), 1024u);
    EXPECT_EQ(r.counter("pack.ff_direct_bytes"), 64_KiB);
    EXPECT_EQ(r.counter("pack.generic_staged_bytes"), 0u);
}

TEST(StatsReport, GenericPathStagesBytesWhenFFDisabled) {
    ClusterOptions opt = two_nodes_with_stats();
    opt.cfg.use_direct_pack_ff = false;
    Cluster c(opt);
    c.run(p2p_workload);
    const obs::RunReport r = c.stats_report();
    EXPECT_EQ(r.counter("pack.ff_direct_writes"), 0u);
    EXPECT_EQ(r.counter("pack.generic_packs"), 2u);  // sender pack + recv unpack
    EXPECT_EQ(r.counter("pack.generic_staged_bytes"), 64_KiB);
}

TEST(StatsReport, PinsDirectVsEmulatedRmaCounters) {
    Cluster c(two_nodes_with_stats());
    c.run([](Comm& comm) {
        // Half-shared window: rank 0 contributes SCI-shared arena memory,
        // rank 1 a private heap buffer. Puts towards rank 0 go direct, puts
        // towards rank 1 must be emulated by its handler.
        constexpr std::size_t kWin = 8_KiB;
        std::span<std::byte> wmem;
        std::vector<std::byte> heap;
        if (comm.rank() == 0) {
            auto mem = comm.alloc_mem(kWin);
            SCIMPI_REQUIRE(mem.is_ok(), "alloc_mem failed");
            wmem = mem.value();
        } else {
            heap.assign(kWin, std::byte{0});
            wmem = {heap.data(), heap.size()};
        }
        std::memset(wmem.data(), 0, kWin);
        auto win = comm.win_create(wmem.data(), kWin);
        EXPECT_TRUE(win->target_shared(0));
        EXPECT_FALSE(win->target_shared(1));

        std::vector<double> buf(512, 1.0);  // 4 KiB backing for every op
        win->fence();
        if (comm.rank() == 1) {
            // Direct put into rank 0's shared region.
            ASSERT_TRUE(win->put(buf.data(), 8, Datatype::float64(), 0, 0));
            // 64 B get: under get_remote_put_threshold -> direct read.
            ASSERT_TRUE(win->get(buf.data(), 8, Datatype::float64(), 0, 0));
            // 4 KiB get: above the 2 KiB threshold -> converted to a
            // remote-put served by rank 0's handler.
            ASSERT_TRUE(win->get(buf.data(), 512, Datatype::float64(), 0, 0));
            // Accumulate always runs target-side.
            ASSERT_TRUE(win->accumulate_sum(buf.data(), 8, 0, 64));
        } else {
            // Put into rank 1's private window -> emulated.
            ASSERT_TRUE(win->put(buf.data(), 8, Datatype::float64(), 1, 0));
            // Get from private memory -> remote-put, but *not* a conversion
            // (the direct path was never available).
            ASSERT_TRUE(win->get(buf.data(), 8, Datatype::float64(), 1, 0));
        }
        win->fence();
    });

    const obs::RunReport r = c.stats_report();
    EXPECT_EQ(r.counter("rma.direct_puts"), 1u);
    EXPECT_EQ(r.counter("rma.direct_put_bytes"), 64u);
    EXPECT_EQ(r.counter("rma.emulated_puts"), 1u);
    EXPECT_EQ(r.counter("rma.emulated_put_bytes"), 64u);
    EXPECT_EQ(r.counter("rma.direct_gets"), 1u);
    EXPECT_EQ(r.counter("rma.remote_put_gets"), 2u);
    EXPECT_EQ(r.counter("rma.get_conversions"), 1u);
    EXPECT_EQ(r.counter("rma.accumulates"), 1u);
    EXPECT_EQ(r.counter("rma.local_ops"), 0u);
}

TEST(StatsReport, LinkTotalsAggregateTheFabricStats) {
    Cluster c(two_nodes_with_stats());
    c.run(p2p_workload);
    const obs::RunReport r = c.stats_report();

    ASSERT_FALSE(r.links.empty());
    std::uint64_t payload = 0, wire = 0, echo = 0;
    for (const auto& l : r.links) {
        payload += l.payload_bytes;
        wire += l.wire_bytes;
        echo += l.echo_bytes;
    }
    EXPECT_GT(payload, 0u);
    EXPECT_GT(wire, payload);  // headers ride on top of payload
    // The registry counters are fed from the same account() calls, so the
    // per-link rows and the aggregate slots must agree exactly.
    EXPECT_EQ(r.counter("fabric.payload_bytes"), payload);
    EXPECT_EQ(r.counter("fabric.wire_bytes"), wire);
    EXPECT_EQ(r.counter("fabric.echo_bytes"), echo);
    EXPECT_GE(r.gauge("fabric.concurrent_transfers"), 1.0);
    EXPECT_GE(c.fabric().peak_concurrent_transfers(), 1);
}

TEST(StatsReport, DisabledRegistryStaysAllZero) {
    ClusterOptions opt;
    opt.nodes = 2;  // collect_stats defaults to false
    Cluster c(opt);
    c.run(p2p_workload);
    const obs::RunReport r = c.stats_report();
    EXPECT_FALSE(r.stats_enabled);
    EXPECT_EQ(r.counter("mpi.sends_eager"), 0u);
    EXPECT_EQ(r.counter("fabric.payload_bytes"), 0u);
    // The unconditional per-rank Stats still observe the traffic.
    EXPECT_EQ(c.rank_state(0).stats().sends_eager, 1u);
    // Report JSON stays well-formed either way.
    EXPECT_TRUE(testsupport::json_valid(r.to_json()));
}

TEST(StatsReport, TraceFileCarriesCounterTracksAndCategories) {
    const std::string path = ::testing::TempDir() + "/scimpi_obs.trace.json";
    {
        ClusterOptions opt = two_nodes_with_stats();
        opt.trace_file = path;
        Cluster c(opt);
        c.run(p2p_workload);

        const sim::Tracer& tr = c.engine().tracer();
        ASSERT_TRUE(tr.enabled());
        int counters = 0, categorized = 0;
        for (const auto& e : tr.events()) {
            if (e.kind == sim::Tracer::Kind::counter) ++counters;
            if (e.kind == sim::Tracer::Kind::span && tr.cat_of(e) == "p2p")
                ++categorized;
        }
        EXPECT_GT(counters, 0);     // fabric load / active-transfer tracks
        EXPECT_GT(categorized, 0);  // protocol spans are category-tagged
    }  // ~Cluster dumps the trace file

    std::ifstream in(path);
    ASSERT_TRUE(in.good()) << path;
    std::stringstream ss;
    ss << in.rdbuf();
    const std::string json = ss.str();
    EXPECT_TRUE(testsupport::json_valid(json));
    EXPECT_NE(json.find("\"ph\": \"C\""), std::string::npos);
    EXPECT_NE(json.find("\"cat\": \"p2p\""), std::string::npos);
    std::remove(path.c_str());
}

TEST(StatsReport, HistogramsSeparateEagerFromRendezvousLatency) {
    Cluster c(two_nodes_with_stats());
    c.run(p2p_workload);
    const obs::RunReport r = c.stats_report();

    // The workload sends exactly one eager (1 KiB) and one rendezvous
    // (64 KiB) message; each lands in its own latency histogram.
    const obs::HistogramSnapshot* eager = r.histogram("mpi.latency_eager_ns");
    ASSERT_NE(eager, nullptr);
    EXPECT_EQ(eager->count, 1u);
    EXPECT_GT(eager->sum, 0u);
    EXPECT_EQ(eager->p50, static_cast<double>(eager->min));  // single sample

    const obs::HistogramSnapshot* rndv = r.histogram("mpi.latency_rndv_ns");
    ASSERT_NE(rndv, nullptr);
    EXPECT_EQ(rndv->count, 1u);
    // A 64 KiB rendezvous takes longer end-to-end than a 1 KiB eager send.
    EXPECT_GT(rndv->min, eager->max);

    // Short messages (finalize-barrier tokens) and the ff pack run populate
    // their histograms too: at least 4 non-empty distributions per run.
    const obs::HistogramSnapshot* sh = r.histogram("mpi.latency_short_ns");
    ASSERT_NE(sh, nullptr);
    EXPECT_GE(sh->count, 1u);
    const obs::HistogramSnapshot* ff = r.histogram("pack.ff_throughput_mibs");
    ASSERT_NE(ff, nullptr);
    EXPECT_EQ(ff->count, 1u);  // one ff gather into the rendezvous ring
    EXPECT_GT(ff->min, 0u);

    int non_empty = 0;
    for (const obs::HistogramSnapshot& h : r.histograms)
        if (h.count > 0) ++non_empty;
    EXPECT_GE(non_empty, 4);
}

TEST(StatsReport, RmaLatencyHistogramsSplitByPath) {
    Cluster c(two_nodes_with_stats());
    c.run([](Comm& comm) {
        constexpr std::size_t kWin = 8_KiB;
        auto mem = comm.alloc_mem(kWin);
        SCIMPI_REQUIRE(mem.is_ok(), "alloc_mem failed");
        auto win = comm.win_create(mem.value().data(), kWin);
        std::vector<double> buf(512, 1.0);
        win->fence();
        if (comm.rank() == 0) {
            ASSERT_TRUE(win->put(buf.data(), 8, Datatype::float64(), 1, 0));
            ASSERT_TRUE(win->get(buf.data(), 512, Datatype::float64(), 1, 0));
            ASSERT_TRUE(win->accumulate_sum(buf.data(), 8, 1, 64));
        }
        win->fence();
    });
    const obs::RunReport r = c.stats_report();
    const obs::HistogramSnapshot* direct = r.histogram("rma.latency_direct_ns");
    ASSERT_NE(direct, nullptr);
    EXPECT_EQ(direct->count, 1u);  // the 64 B shared-window put
    const obs::HistogramSnapshot* emu = r.histogram("rma.latency_emulated_ns");
    ASSERT_NE(emu, nullptr);
    EXPECT_EQ(emu->count, 1u);  // the accumulate, served target-side
    const obs::HistogramSnapshot* rput = r.histogram("rma.latency_remote_put_ns");
    ASSERT_NE(rput, nullptr);
    EXPECT_EQ(rput->count, 1u);  // the 4 KiB get converted to a remote put
    // The remote-put get is a full round trip; it dominates the direct put.
    EXPECT_GT(rput->min, direct->max);
}

TEST(StatsReport, SchemaCarriesVersionSeedAndFaultSpec) {
    ClusterOptions opt = two_nodes_with_stats();
    opt.cfg.seed = 12345;
    Cluster c(opt);
    c.run(p2p_workload);
    const obs::RunReport r = c.stats_report();
    EXPECT_EQ(r.schema_version, obs::RunReport::kSchemaVersion);
    EXPECT_EQ(r.seed, 12345u);
    EXPECT_TRUE(r.fault_spec.empty());
    EXPECT_GT(r.sim_time_ns, 0u);
    EXPECT_DOUBLE_EQ(r.sim_seconds,
                     static_cast<double>(r.sim_time_ns) / 1e9);
    const std::string json = r.to_json();
    EXPECT_TRUE(testsupport::json_valid(json));
    EXPECT_NE(json.find("\"schema_version\": 6"), std::string::npos);
    EXPECT_NE(json.find("\"seed\": 12345"), std::string::npos);
    EXPECT_NE(json.find("\"histograms\""), std::string::npos);
    // v3: the scimpi-check fields are always present; without --check the
    // checker never ran and the violations array is empty.
    EXPECT_NE(json.find("\"check_enabled\": false"), std::string::npos);
    EXPECT_NE(json.find("\"violations\": []"), std::string::npos);
    // v4: DES self-metrics and flight-recorder arrays are always present;
    // with the recorder off the arrays are empty and the cadence is 0.
    EXPECT_NE(json.find("\"wall_ns\""), std::string::npos);
    EXPECT_NE(json.find("\"record_cadence_ns\": 0"), std::string::npos);
    EXPECT_NE(json.find("\"timeseries\": []"), std::string::npos);
    EXPECT_NE(json.find("\"hotspots\": []"), std::string::npos);
    EXPECT_GT(r.wall_ns, 0u);
    EXPECT_GT(r.events_per_sec_wall, 0.0);
    EXPECT_GT(r.wall_per_sim_second, 0.0);
}

TEST(StatsReport, ProfileAttributesEveryTickOfEveryRank) {
    ClusterOptions opt = two_nodes_with_stats();
    opt.profile = true;
    Cluster c(opt);
    c.run(p2p_workload);
    const obs::RunReport r = c.stats_report();
    EXPECT_TRUE(r.profile_enabled);
    ASSERT_EQ(r.profiles.size(), 2u);
    for (const obs::RunReport::RankProfile& p : r.profiles) {
        std::uint64_t sum = 0;
        for (const std::uint64_t ns : p.state_ns) sum += ns;
        // The invariant the profiler guarantees: every simulated nanosecond
        // of a rank is attributed to exactly one state.
        EXPECT_EQ(sum, p.total_ns) << "rank " << p.rank;
        EXPECT_EQ(p.total_ns, r.sim_time_ns) << "rank " << p.rank;
        // Ranks spend *some* time blocked on control messages (the barrier).
        constexpr auto wait_recv =
            static_cast<std::size_t>(obs::ProfState::wait_recv);
        EXPECT_GT(p.state_ns[wait_recv] +
                      p.state_ns[static_cast<std::size_t>(
                          obs::ProfState::wait_sync)],
                  0u)
            << "rank " << p.rank;
    }
    // The receiver posts both recvs before data arrives in this workload, so
    // its matches classify as late-sender (user messages only, tag >= 0).
    EXPECT_EQ(r.profiles[1].late_senders, 2u);
    EXPECT_GT(r.profiles[1].late_sender_wait_ns, 0u);
    EXPECT_EQ(r.profiles[0].late_senders, 0u);

    const std::string json = r.to_json();
    EXPECT_TRUE(testsupport::json_valid(json));
    EXPECT_NE(json.find("\"profiles\""), std::string::npos);
    EXPECT_NE(json.find("\"wait_recv\""), std::string::npos);
}

TEST(StatsReport, ProfileDisabledLeavesReportEmpty) {
    Cluster c(two_nodes_with_stats());  // profile defaults to off
    c.run(p2p_workload);
    const obs::RunReport r = c.stats_report();
    EXPECT_FALSE(r.profile_enabled);
    EXPECT_TRUE(r.profiles.empty());
}

TEST(StatsReport, ObservabilityDoesNotPerturbTheSimulation) {
    // Full observability on vs everything off: the simulated run must be
    // bit-identical — same virtual end time, same number of engine events.
    std::uint64_t time_on = 0, events_on = 0;
    {
        ClusterOptions opt = two_nodes_with_stats();
        opt.profile = true;
        Cluster c(opt);
        c.engine().tracer().enable();
        c.run(p2p_workload);
        time_on = static_cast<std::uint64_t>(c.engine().now());
        events_on = c.engine().events_dispatched();
    }
    ClusterOptions opt;
    opt.nodes = 2;
    Cluster c(opt);
    c.run(p2p_workload);
    EXPECT_EQ(static_cast<std::uint64_t>(c.engine().now()), time_on);
    EXPECT_EQ(c.engine().events_dispatched(), events_on);
}

TEST(StatsReport, OmitsHistogramsThatRecordedNoSamples) {
    // v4: the report drops all-zero histogram snapshots. The RMA latency
    // histograms are registered by every run (bind_metrics at construction)
    // but this p2p-only workload never records into them.
    Cluster c(two_nodes_with_stats());
    c.run(p2p_workload);
    EXPECT_GT(c.metrics().histograms().size(), 0u);
    bool registry_has_empty = false;
    for (const obs::HistogramSnapshot& h : c.metrics().histograms())
        if (h.count == 0) registry_has_empty = true;
    EXPECT_TRUE(registry_has_empty);  // the filter has something to drop

    const obs::RunReport r = c.stats_report();
    ASSERT_FALSE(r.histograms.empty());
    for (const obs::HistogramSnapshot& h : r.histograms)
        EXPECT_GT(h.count, 0u) << h.name;
    EXPECT_EQ(r.histogram("rma.latency_direct_ns"), nullptr);
    const std::string json = r.to_json();
    EXPECT_EQ(json.find("rma.latency_direct_ns"), std::string::npos);
}

TEST(StatsReport, RecorderFillsTimeseriesAndHotspots) {
    ClusterOptions opt = two_nodes_with_stats();
    opt.record = 1_us;
    Cluster c(opt);
    c.run(p2p_workload);
    const obs::RunReport r = c.stats_report();
    EXPECT_EQ(r.record_cadence_ns, 1000u);
    ASSERT_FALSE(r.timeseries.empty());

    // The cumulative engine-event series must exist, be monotone, and end at
    // the run's final event count (modulo events after the last sample).
    const obs::TimeSeries* ev = r.series("sim.events");
    ASSERT_NE(ev, nullptr);
    ASSERT_GT(ev->t.size(), 1u);
    ASSERT_EQ(ev->t.size(), ev->v.size());
    for (std::size_t i = 1; i < ev->t.size(); ++i) {
        EXPECT_GT(ev->t[i], ev->t[i - 1]);
        EXPECT_GE(ev->v[i], ev->v[i - 1]);
    }
    EXPECT_LE(ev->v.back(), static_cast<double>(r.events_dispatched));

    // The p2p traffic crosses link 0 (node 0 -> node 1), so its utilization
    // series must show activity and rank it as a hot spot.
    const obs::TimeSeries* util = r.series("link0.util");
    ASSERT_NE(util, nullptr);
    double peak = 0.0;
    for (const double v : util->v) peak = std::max(peak, v);
    EXPECT_GT(peak, 0.0);
    ASSERT_FALSE(r.hotspots.empty());
    EXPECT_EQ(r.hotspots[0].link, 0);
    EXPECT_DOUBLE_EQ(r.hotspots[0].peak_util, peak);

    const std::string json = r.to_json();
    EXPECT_TRUE(testsupport::json_valid(json));
    EXPECT_NE(json.find("\"timeseries\": [\n"), std::string::npos);
    EXPECT_NE(json.find("\"hotspots\": [\n"), std::string::npos);
    EXPECT_NE(json.find("link0.util"), std::string::npos);
}

TEST(StatsReport, RecorderDoesNotPerturbTheSimulation) {
    std::uint64_t time_off = 0, events_off = 0;
    {
        ClusterOptions opt;
        opt.nodes = 2;
        Cluster c(opt);
        c.run(p2p_workload);
        time_off = static_cast<std::uint64_t>(c.engine().now());
        events_off = c.engine().events_dispatched();
    }
    ClusterOptions opt = two_nodes_with_stats();
    opt.record = 500_ns;  // aggressive cadence: many samples
    Cluster c(opt);
    c.run(p2p_workload);
    EXPECT_EQ(static_cast<std::uint64_t>(c.engine().now()), time_off);
    EXPECT_EQ(c.engine().events_dispatched(), events_off);
    EXPECT_GT(c.recorder().sample_count(), 0u);
}

TEST(StatsReport, AbortPathStillWritesStatsAndTraceFiles) {
    const std::string stats = ::testing::TempDir() + "/scimpi_abort_stats.json";
    const std::string trace = ::testing::TempDir() + "/scimpi_abort.trace.json";
    std::remove(stats.c_str());
    std::remove(trace.c_str());
    {
        ClusterOptions opt = two_nodes_with_stats();
        opt.stats_file = stats;
        opt.trace_file = trace;
        opt.record = 1_us;
        Cluster c(opt);
        EXPECT_THROW(c.run([](Comm& comm) {
            std::vector<double> buf(128, 1.0);  // 1 KiB: the eager path
            if (comm.rank() == 0) {
                ASSERT_TRUE(
                    comm.send(buf.data(), 128, Datatype::float64(), 1, 0));
                panic("injected failure after first send");
            }
            comm.recv(buf.data(), 128, Datatype::float64(), 0, 0);
        }),
                     Panic);
        // flush_telemetry() ran on the abort path: both files exist already,
        // before ~Cluster.
        std::ifstream s_in(stats), t_in(trace);
        EXPECT_TRUE(s_in.good()) << stats;
        EXPECT_TRUE(t_in.good()) << trace;
    }
    // And they are valid, useful JSON (not truncated by the unwind).
    for (const std::string& path : {stats, trace}) {
        std::ifstream in(path);
        ASSERT_TRUE(in.good()) << path;
        std::stringstream ss;
        ss << in.rdbuf();
        EXPECT_TRUE(testsupport::json_valid(ss.str())) << path;
    }
    std::ifstream in(stats);
    std::stringstream ss;
    ss << in.rdbuf();
    const std::string json = ss.str();
    // The pre-panic traffic made it into the aborted run's report.
    EXPECT_NE(json.find("\"mpi.sends_eager\": 1"), std::string::npos);
    EXPECT_NE(json.find("\"schema_version\": 6"), std::string::npos);
    std::remove(stats.c_str());
    std::remove(trace.c_str());
}

TEST(StatsReport, EnvVarTogglesTheRegistry) {
    ASSERT_EQ(setenv("SCIMPI_STATS", "1", 1), 0);
    {
        ClusterOptions opt;
        opt.nodes = 2;
        Cluster c(opt);
        EXPECT_TRUE(c.metrics().enabled());
    }
    ASSERT_EQ(setenv("SCIMPI_STATS", "0", 1), 0);
    {
        ClusterOptions opt;
        opt.nodes = 2;
        Cluster c(opt);
        EXPECT_FALSE(c.metrics().enabled());
    }
    unsetenv("SCIMPI_STATS");
}

}  // namespace
}  // namespace scimpi::mpi
