// Unit tests for obs::Histogram: log2 bucket boundaries, percentile edge
// cases, disabled no-op semantics, and the JSON snapshot export.
#include <gtest/gtest.h>

#include "obs/metrics.hpp"
#include "support/mini_json.hpp"

namespace scimpi::obs {
namespace {

TEST(Histogram, BucketIndexIsTheBitWidth) {
    EXPECT_EQ(Histogram::bucket_index(0), 0);
    EXPECT_EQ(Histogram::bucket_index(1), 1);
    EXPECT_EQ(Histogram::bucket_index(2), 2);
    EXPECT_EQ(Histogram::bucket_index(3), 2);
    EXPECT_EQ(Histogram::bucket_index(4), 3);
    EXPECT_EQ(Histogram::bucket_index(7), 3);
    EXPECT_EQ(Histogram::bucket_index(8), 4);
    EXPECT_EQ(Histogram::bucket_index(1023), 10);
    EXPECT_EQ(Histogram::bucket_index(1024), 11);
    EXPECT_EQ(Histogram::bucket_index(~std::uint64_t{0}), 64);
}

TEST(Histogram, HugeValuesFoldIntoTheLastBucket) {
    // Bit width of 2^63.. is 64, one past the bucket array; record() must
    // fold those into bucket 63 instead of indexing out of bounds.
    MetricsRegistry reg;
    reg.enable();
    Histogram& h = reg.histogram("t");
    h.record(~std::uint64_t{0});
    h.record(std::uint64_t{1} << 63);
    EXPECT_EQ(h.count(), 2u);
    EXPECT_EQ(h.bucket(Histogram::kBuckets - 1), 2u);
    EXPECT_EQ(h.max(), ~std::uint64_t{0});
}

TEST(Histogram, BucketBoundariesHoldPowerOfTwoRanges) {
    // Bucket i holds [2^(i-1), 2^i - 1]; check both edges for several i.
    for (int i = 1; i < 40; ++i) {
        const std::uint64_t lo = std::uint64_t{1} << (i - 1);
        const std::uint64_t hi = (std::uint64_t{1} << i) - 1;
        EXPECT_EQ(Histogram::bucket_index(lo), i) << "lo edge of bucket " << i;
        EXPECT_EQ(Histogram::bucket_index(hi), i) << "hi edge of bucket " << i;
    }
}

TEST(Histogram, RecordTracksCountSumMinMaxAndBuckets) {
    MetricsRegistry reg;
    reg.enable();
    Histogram& h = reg.histogram("t");
    h.record(0);
    h.record(1);
    h.record(5);
    h.record(5);
    h.record(1000);
    EXPECT_EQ(h.count(), 5u);
    EXPECT_EQ(h.sum(), 1011u);
    EXPECT_EQ(h.min(), 0u);
    EXPECT_EQ(h.max(), 1000u);
    EXPECT_EQ(h.bucket(0), 1u);   // the 0
    EXPECT_EQ(h.bucket(1), 1u);   // the 1
    EXPECT_EQ(h.bucket(3), 2u);   // both 5s
    EXPECT_EQ(h.bucket(10), 1u);  // 1000 in [512, 1023]
}

TEST(Histogram, PercentileOfEmptyIsZero) {
    // Pinned explicitly: count_ == 0 returns 0.0 up front for *any* p —
    // never the bucket-scan fallthrough (which would return max_ = 0 only by
    // accident) and never the clamped min/max endpoints.
    MetricsRegistry reg;
    reg.enable();
    Histogram& h = reg.histogram("t");
    for (const double p : {-5.0, 0.0, 1.0, 50.0, 99.9, 100.0, 250.0})
        EXPECT_EQ(h.percentile(p), 0.0) << "p" << p;
    EXPECT_EQ(h.min(), 0u);
    EXPECT_EQ(h.max(), 0u);
    // The snapshot of an empty histogram is all-zero — that is exactly what
    // RunReport v4's empty-histogram omission filters on (count == 0).
    const std::vector<HistogramSnapshot> snaps = reg.histograms();
    ASSERT_EQ(snaps.size(), 1u);
    EXPECT_EQ(snaps[0].count, 0u);
    EXPECT_EQ(snaps[0].p50, 0.0);
    EXPECT_EQ(snaps[0].p99, 0.0);
}

TEST(Histogram, PercentileEndpointsReturnMinAndMax) {
    MetricsRegistry reg;
    reg.enable();
    Histogram& h = reg.histogram("t");
    h.record(10);
    h.record(100);
    h.record(100000);
    EXPECT_EQ(h.percentile(0.0), 10.0);
    EXPECT_EQ(h.percentile(-5.0), 10.0);
    EXPECT_EQ(h.percentile(100.0), 100000.0);
    EXPECT_EQ(h.percentile(250.0), 100000.0);
}

TEST(Histogram, SingleSampleReportsItselfAtEveryPercentile) {
    MetricsRegistry reg;
    reg.enable();
    Histogram& h = reg.histogram("t");
    h.record(777);
    for (const double p : {1.0, 25.0, 50.0, 90.0, 99.0, 99.9})
        EXPECT_EQ(h.percentile(p), 777.0) << "p" << p;
}

TEST(Histogram, SingleBucketPopulationClampsToObservedRange) {
    MetricsRegistry reg;
    reg.enable();
    Histogram& h = reg.histogram("t");
    // All samples land in bucket 7 ([64, 127]); the observed range is
    // narrower, so interpolation must clamp to [70, 80].
    for (int i = 0; i < 100; ++i) h.record(70 + (i % 11));
    for (const double p : {1.0, 50.0, 99.0}) {
        const double v = h.percentile(p);
        EXPECT_GE(v, 70.0) << "p" << p;
        EXPECT_LE(v, 80.0) << "p" << p;
    }
    EXPECT_LE(h.percentile(10.0), h.percentile(90.0));  // monotone
}

TEST(Histogram, PercentilesAreMonotoneAcrossBuckets) {
    MetricsRegistry reg;
    reg.enable();
    Histogram& h = reg.histogram("t");
    for (std::uint64_t v = 1; v <= 4096; v *= 2) h.record(v);
    double prev = 0.0;
    for (double p = 5.0; p <= 95.0; p += 5.0) {
        const double v = h.percentile(p);
        EXPECT_GE(v, prev) << "p" << p;
        prev = v;
    }
}

TEST(Histogram, DisabledRegistryDropsRecordsEntirely) {
    MetricsRegistry reg;  // disabled by default
    Histogram& h = reg.histogram("t");
    h.record(42);
    h.record(7);
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.sum(), 0u);
    EXPECT_EQ(h.max(), 0u);
    for (int i = 0; i < Histogram::kBuckets; ++i) EXPECT_EQ(h.bucket(i), 0u);
    // Flipping the registry on makes the *same handle* live.
    reg.enable();
    h.record(42);
    EXPECT_EQ(h.count(), 1u);
    EXPECT_EQ(h.min(), 42u);
}

TEST(Histogram, ResetZeroesValuesButKeepsHandles) {
    MetricsRegistry reg;
    reg.enable();
    Histogram& h = reg.histogram("t");
    h.record(9);
    h.record(1024);
    reg.reset();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.sum(), 0u);
    EXPECT_EQ(h.min(), 0u);
    EXPECT_EQ(h.max(), 0u);
    EXPECT_EQ(h.bucket(11), 0u);
    h.record(3);  // handle still valid and live
    EXPECT_EQ(h.count(), 1u);
    EXPECT_EQ(&reg.histogram("t"), &h);  // find-or-create returns same slot
}

TEST(Histogram, RegistrySnapshotCarriesPercentiles) {
    MetricsRegistry reg;
    reg.enable();
    reg.histogram("b");
    Histogram& h = reg.histogram("a");
    for (int i = 0; i < 10; ++i) h.record(100);
    const std::vector<HistogramSnapshot> snaps = reg.histograms();
    ASSERT_EQ(snaps.size(), 2u);
    EXPECT_EQ(snaps[0].name, "a");  // map iteration is name-sorted
    EXPECT_EQ(snaps[1].name, "b");
    EXPECT_EQ(snaps[0].count, 10u);
    EXPECT_EQ(snaps[0].sum, 1000u);
    EXPECT_EQ(snaps[0].p50, 100.0);
    EXPECT_EQ(snaps[0].p99, 100.0);
    EXPECT_EQ(snaps[1].count, 0u);
}

TEST(Histogram, SnapshotToJsonIsValid) {
    MetricsRegistry reg;
    reg.enable();
    Histogram& h = reg.histogram("t");
    h.record(1);
    h.record(1000000);
    const std::vector<HistogramSnapshot> snaps = reg.histograms();
    ASSERT_EQ(snaps.size(), 1u);
    const std::string json = snaps[0].to_json();
    EXPECT_TRUE(testsupport::json_valid(json)) << json;
    EXPECT_NE(json.find("\"count\": 2"), std::string::npos);
    EXPECT_NE(json.find("\"p50\""), std::string::npos);
}

}  // namespace
}  // namespace scimpi::obs
