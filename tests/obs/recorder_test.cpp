// Unit tests for obs::Recorder: sampling, ring-buffer decimation, export-time
// derived series (rates / ratios staying exact across decimation), and the
// congestion hot-spot ranking.
#include "obs/recorder.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "support/mini_json.hpp"

namespace scimpi::obs {
namespace {

Recorder make(SimTime cadence, std::size_t capacity = 2048) {
    Recorder r;
    r.configure({cadence, capacity});
    return r;
}

TEST(Recorder, DisabledByDefaultAndWithZeroCadence) {
    Recorder r;
    EXPECT_FALSE(r.enabled());
    r.sample(100);
    EXPECT_EQ(r.sample_count(), 0u);
    r.configure({0, 16});
    EXPECT_FALSE(r.enabled());
}

TEST(Recorder, SamplesEveryProbeOnOneSharedTimeBase) {
    Recorder r = make(10);
    double level = 0.0;
    std::uint64_t total = 0;
    r.add_gauge("depth", [&] { return level; });
    r.add_cumulative("bytes", [&] { return static_cast<double>(total); });
    level = 2.0;
    total = 100;
    r.sample(10);
    level = 5.0;
    total = 250;
    r.sample(20);

    const std::vector<TimeSeries> out = r.series();
    ASSERT_EQ(out.size(), 2u);
    EXPECT_EQ(out[0].name, "depth");
    ASSERT_EQ(out[0].t.size(), 2u);
    EXPECT_EQ(out[0].t[0], 10u);
    EXPECT_EQ(out[0].t[1], 20u);
    EXPECT_EQ(out[0].v[0], 2.0);
    EXPECT_EQ(out[0].v[1], 5.0);
    EXPECT_EQ(out[1].name, "bytes");
    EXPECT_EQ(out[1].v[1], 250.0);
}

TEST(Recorder, MirrorsSampledValuesIntoARegistryGauge) {
    MetricsRegistry m;
    m.enable();
    Gauge& g = m.gauge("depth");
    Recorder r = make(10);
    double level = 3.0;
    r.add_gauge("depth", [&] { return level; }, &g);
    r.sample(10);
    level = 9.0;
    r.sample(20);
    level = 4.0;
    r.sample(30);
    EXPECT_EQ(g.value(), 4.0);
    EXPECT_EQ(g.max(), 9.0);  // high-water mark survives in the gauge table
}

TEST(Recorder, DecimationHalvesRetainedSamplesAndDoublesStride) {
    Recorder r = make(1, /*capacity=*/8);
    std::uint64_t ticks = 0;
    r.add_cumulative("n", [&] { return static_cast<double>(ticks); });
    for (SimTime t = 1; t <= 64; ++t) {
        ticks = static_cast<std::uint64_t>(t);
        r.sample(t);
    }
    // Capacity 8: each time the buffer fills, half the samples are dropped
    // and the stride doubles. 64 boundaries fill it four times
    // (stride 1->2->4->8->16); retained count stays in [capacity/2, capacity].
    EXPECT_LE(r.sample_count(), 8u);
    EXPECT_GE(r.sample_count(), 4u);
    EXPECT_EQ(r.stride(), 16u);
    EXPECT_EQ(r.decimations(), 4u);
    // The retained time base is still strictly increasing and the retained
    // cumulative values still match their sample times exactly (the probe
    // read t at time t) — decimation drops samples, never skews them.
    const std::vector<TimeSeries> out = r.series();
    ASSERT_EQ(out.size(), 1u);
    for (std::size_t i = 0; i < out[0].t.size(); ++i) {
        if (i > 0) {
            EXPECT_GT(out[0].t[i], out[0].t[i - 1]);
        }
        EXPECT_EQ(out[0].v[i], static_cast<double>(out[0].t[i]));
    }
}

TEST(Recorder, RatesStayExactAcrossDecimation) {
    // A counter growing at exactly 3 per ns: the derived rate must read 3.0
    // in every window, before and after decimation widens the windows.
    Recorder r = make(1, 8);
    SimTime now = 0;
    r.add_cumulative("c", [&] { return static_cast<double>(3 * now); });
    r.add_rate("c.rate", "c", 1.0);
    for (now = 1; now <= 100; ++now) r.sample(now);
    EXPECT_GT(r.decimations(), 0u);
    const std::vector<TimeSeries> out = r.series();
    ASSERT_EQ(out.size(), 2u);
    const TimeSeries& rate = out[1];
    EXPECT_EQ(rate.name, "c.rate");
    ASSERT_GT(rate.v.size(), 1u);
    for (const double v : rate.v) EXPECT_DOUBLE_EQ(v, 3.0);
}

TEST(Recorder, RatioSkipsWindowsWhereTheDenominatorStalls) {
    Recorder r = make(10);
    double num = 0.0, den = 0.0;
    r.add_cumulative("n", [&] { return num; });
    r.add_cumulative("d", [&] { return den; });
    r.add_ratio("n_per_d", "n", "d", 1.0);
    num = 10;
    den = 5;
    r.sample(10);
    num = 20;  // den unchanged: this window must be skipped
    r.sample(20);
    num = 40;
    den = 10;
    r.sample(30);
    const std::vector<TimeSeries> out = r.series();
    const TimeSeries& ratio = out.back();
    ASSERT_EQ(ratio.v.size(), 1u);  // only the window where den advanced
    EXPECT_EQ(ratio.t[0], 30u);
    EXPECT_DOUBLE_EQ(ratio.v[0], (40.0 - 20.0) / (10.0 - 5.0));
}

TEST(Recorder, ClearDropsSamplesButKeepsRegistrations) {
    Recorder r = make(1, 8);
    double v = 1.0;
    r.add_gauge("g", [&] { return v; });
    for (SimTime t = 1; t <= 20; ++t) r.sample(t);
    EXPECT_GT(r.sample_count(), 0u);
    r.clear();
    EXPECT_EQ(r.sample_count(), 0u);
    EXPECT_EQ(r.stride(), 1u);
    EXPECT_EQ(r.decimations(), 0u);
    r.sample(5);
    EXPECT_EQ(r.sample_count(), 1u);
    EXPECT_EQ(r.series()[0].v[0], 1.0);
}

TEST(Recorder, TimeSeriesToJsonIsValid) {
    TimeSeries ts;
    ts.name = "link0.util";
    ts.t = {10, 20, 30};
    ts.v = {0.5, 1.0, 0.25};
    const std::string json = ts.to_json();
    EXPECT_TRUE(testsupport::json_valid(json)) << json;
    EXPECT_NE(json.find("\"t\": [10, 20, 30]"), std::string::npos);
    EXPECT_NE(json.find("\"v\": [0.5, 1, 0.25]"), std::string::npos);
}

TEST(CongestionHotspots, RanksLinksByPeakAndSkipsIdleOnes) {
    std::vector<TimeSeries> series;
    series.push_back({"link0.util", {10, 20, 30}, {0.1, 0.9, 0.2}});
    series.push_back({"link1.util", {10, 20, 30}, {0.4, 0.5, 0.6}});
    series.push_back({"link2.util", {10, 20, 30}, {0.0, 0.0, 0.0}});  // idle
    series.push_back({"fabric.inflight_bytes", {10, 20}, {100.0, 50.0}});

    const std::vector<HotSpot> spots = congestion_hotspots(series, 5);
    ASSERT_EQ(spots.size(), 2u);  // idle link and non-link series skipped
    EXPECT_EQ(spots[0].link, 0);
    EXPECT_DOUBLE_EQ(spots[0].peak_util, 0.9);
    EXPECT_EQ(spots[0].peak_t_ns, 20u);
    EXPECT_EQ(spots[1].link, 1);
    EXPECT_DOUBLE_EQ(spots[1].peak_util, 0.6);
    // Time-weighted mean over equal windows: first sample has weight 0.
    EXPECT_NEAR(spots[1].mean_util, (0.5 + 0.6) / 2.0, 1e-12);
    // k truncation keeps the top entries.
    EXPECT_EQ(congestion_hotspots(series, 1).size(), 1u);
    EXPECT_EQ(congestion_hotspots(series, 1)[0].link, 0);
}

TEST(Recorder, SampleRespectsStrideAfterDecimation) {
    // Stride parity follows the boundary (tick) counter, not sim time: after
    // 4 boundaries trigger decimation (stride 2), boundary #5 (tick 4, even)
    // is recorded and boundary #6 (tick 5, odd) is skipped.
    Recorder r = make(1, 4);
    SimTime now = 0;
    r.add_cumulative("c", [&] { return static_cast<double>(now); });
    for (now = 1; now <= 4; ++now) r.sample(now);  // triggers decimation
    EXPECT_EQ(r.stride(), 2u);
    const std::size_t before = r.sample_count();
    now = 5;
    r.sample(5);  // tick 4: on-stride, recorded
    EXPECT_EQ(r.sample_count(), before + 1);
    now = 6;
    r.sample(6);  // tick 5: off-stride, skipped
    EXPECT_EQ(r.sample_count(), before + 1);
}

TEST(Recorder, DecimationFiresAtCapacityNotBefore) {
    // The buffer decimates when the retained count *reaches* capacity (the
    // check is size >= capacity, run right after the push), so capacity-1
    // samples survive intact and the capacity-th halves the buffer.
    Recorder r = make(1, /*capacity=*/8);
    SimTime now = 0;
    r.add_cumulative("c", [&] { return static_cast<double>(now); });
    for (now = 1; now <= 7; ++now) r.sample(now);
    EXPECT_EQ(r.sample_count(), 7u);
    EXPECT_EQ(r.decimations(), 0u);
    EXPECT_EQ(r.stride(), 1u);
    now = 8;
    r.sample(8);  // hits capacity exactly: even retained indices survive
    EXPECT_EQ(r.sample_count(), 4u);
    EXPECT_EQ(r.decimations(), 1u);
    EXPECT_EQ(r.stride(), 2u);
    const std::vector<TimeSeries> out = r.series();
    ASSERT_EQ(out[0].t.size(), 4u);
    EXPECT_EQ(out[0].t[0], 1u);
    EXPECT_EQ(out[0].t[1], 3u);
    EXPECT_EQ(out[0].t[2], 5u);
    EXPECT_EQ(out[0].t[3], 7u);
}

TEST(Recorder, ConfigureClampsCapacityToDecimationMinimum) {
    // A capacity below 4 could decimate down to a single sample and stall
    // the ring; configure() clamps it, so three samples are always retained.
    Recorder r = make(1, /*capacity=*/1);
    double v = 0.0;
    r.add_gauge("g", [&] { return v; });
    for (SimTime t = 1; t <= 3; ++t) r.sample(t);
    EXPECT_EQ(r.sample_count(), 3u);
    EXPECT_EQ(r.decimations(), 0u);
    r.sample(4);  // the clamped capacity of 4 is reached here
    EXPECT_EQ(r.decimations(), 1u);
}

TEST(Recorder, SingleSampleYieldsEmptyDerivedSeries) {
    // Derived series need two retained samples to form a window; with one
    // sample they export as present-but-empty, not as a division by zero.
    Recorder r = make(10);
    double c = 7.0;
    r.add_cumulative("c", [&] { return c; });
    r.add_rate("c.rate", "c", 1.0);
    r.add_ratio("c_per_c", "c", "c", 1.0);
    r.sample(10);
    const std::vector<TimeSeries> out = r.series();
    ASSERT_EQ(out.size(), 3u);
    EXPECT_EQ(out[0].v.size(), 1u);
    EXPECT_EQ(out[1].name, "c.rate");
    EXPECT_TRUE(out[1].t.empty());
    EXPECT_TRUE(out[1].v.empty());
    EXPECT_TRUE(out[2].t.empty());
}

TEST(Recorder, RateStaysExactAfterExactlyTwoDoublings) {
    // Walk the stride through 1 -> 2 -> 4 and pin the retained time base:
    // capacity 4 decimates at now=4 (keeping {1,3}) and at now=7 (keeping
    // {1,5}), then records the on-stride boundary at now=9. The widened
    // 4 ns windows must still read the exact 3/ns slope.
    Recorder r = make(1, /*capacity=*/4);
    SimTime now = 0;
    r.add_cumulative("c", [&] { return static_cast<double>(3 * now); });
    r.add_rate("c.rate", "c", 1.0);
    for (now = 1; now <= 9; ++now) r.sample(now);
    EXPECT_EQ(r.decimations(), 2u);
    EXPECT_EQ(r.stride(), 4u);
    const std::vector<TimeSeries> out = r.series();
    ASSERT_EQ(out[0].t.size(), 3u);
    EXPECT_EQ(out[0].t[0], 1u);
    EXPECT_EQ(out[0].t[1], 5u);
    EXPECT_EQ(out[0].t[2], 9u);
    const TimeSeries& rate = out.back();
    ASSERT_EQ(rate.v.size(), 2u);
    EXPECT_EQ(rate.t[0], 5u);
    EXPECT_EQ(rate.t[1], 9u);
    for (const double v : rate.v) EXPECT_DOUBLE_EQ(v, 3.0);
}

}  // namespace
}  // namespace scimpi::obs
