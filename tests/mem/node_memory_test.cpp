#include "mem/node_memory.hpp"

#include <gtest/gtest.h>

#include <cstring>

#include "common/units.hpp"

namespace scimpi::mem {
namespace {

TEST(NodeMemory, AllocateGivesWritableSpanInsideArena) {
    NodeMemory nm(0, 64_KiB);
    auto r = nm.allocate(256);
    ASSERT_TRUE(r);
    std::memset(r.value().data(), 0xAB, r.value().size());
    EXPECT_TRUE(nm.contains(r.value().data()));
    EXPECT_TRUE(nm.contains(r.value().data() + 255));
}

TEST(NodeMemory, ContainsRejectsForeignPointers) {
    NodeMemory nm(0, 4_KiB);
    int local = 0;
    EXPECT_FALSE(nm.contains(&local));
    NodeMemory other(1, 4_KiB);
    auto r = other.allocate(16);
    ASSERT_TRUE(r);
    EXPECT_FALSE(nm.contains(r.value().data()));
}

TEST(NodeMemory, OffsetOfMatchesBase) {
    NodeMemory nm(3, 4_KiB);
    auto r = nm.allocate(128, 64);
    ASSERT_TRUE(r);
    EXPECT_EQ(nm.base() + nm.offset_of(r.value().data()), r.value().data());
}

TEST(NodeMemory, FreeReturnsCapacity) {
    NodeMemory nm(0, 1_KiB);
    auto r = nm.allocate(512);
    ASSERT_TRUE(r);
    EXPECT_TRUE(nm.free(r.value()));
    EXPECT_EQ(nm.bytes_in_use(), 0u);
    // full capacity usable again
    EXPECT_TRUE(nm.allocate(1000, 1));
}

TEST(NodeMemory, FreeForeignRegionRejected) {
    NodeMemory nm(0, 1_KiB);
    std::vector<std::byte> foreign(64);
    EXPECT_EQ(nm.free({foreign.data(), foreign.size()}).code(), Errc::invalid_argument);
}

TEST(NodeMemory, ExhaustionSurfacesAsOutOfMemory) {
    NodeMemory nm(0, 256);
    EXPECT_EQ(nm.allocate(4_KiB).status().code(), Errc::out_of_memory);
}

}  // namespace
}  // namespace scimpi::mem
