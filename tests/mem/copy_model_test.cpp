#include "mem/copy_model.hpp"

#include <gtest/gtest.h>

#include "common/units.hpp"

namespace scimpi::mem {
namespace {

class CopyModelTest : public ::testing::Test {
protected:
    CopyModel m{pentium3_800()};
};

TEST_F(CopyModelTest, ZeroBytesCostsOnlyCallOverhead) {
    EXPECT_EQ(m.copy_cost(0, AccessPattern::contig(), AccessPattern::contig()),
              m.profile().copy_call_overhead);
}

TEST_F(CopyModelTest, CostGrowsMonotonicallyWithSize) {
    SimTime prev = 0;
    for (std::size_t sz = 64; sz <= 1_MiB; sz *= 2) {
        const SimTime t = m.copy_cost(sz, AccessPattern::contig(), AccessPattern::contig());
        EXPECT_GT(t, prev) << "size " << sz;
        prev = t;
    }
}

TEST_F(CopyModelTest, CacheResidentCopiesAreFaster) {
    // Same payload, but the small-footprint copy streams from L1/L2.
    const double bw_small = bandwidth_mib(8_KiB, m.copy_cost(8_KiB, {}, {}));
    const double bw_large = bandwidth_mib(4_MiB, m.copy_cost(4_MiB, {}, {}));
    EXPECT_GT(bw_small, bw_large);
}

TEST_F(CopyModelTest, LevelBandwidthSteps) {
    const auto& p = m.profile();
    EXPECT_EQ(m.level_bandwidth(p.l1_size), p.copy_bw_l1);
    EXPECT_EQ(m.level_bandwidth(p.l2_size), p.copy_bw_l2);
    EXPECT_EQ(m.level_bandwidth(p.l2_size + 1), p.copy_bw_mem);
}

TEST_F(CopyModelTest, SubLineBlocksWasteBandwidth) {
    // 8-byte blocks with a wide stride pull a full 32-byte line each.
    const auto strided = AccessPattern::strided(8, 64);
    EXPECT_EQ(m.traffic_bytes(8000, strided), 8000u / 8 * 32);
    // Contiguous pattern moves exactly the payload.
    EXPECT_EQ(m.traffic_bytes(8000, AccessPattern::contig()), 8000u);
}

TEST_F(CopyModelTest, DenseStrideIsNotPenalized) {
    // stride == block means the data is effectively contiguous.
    const auto dense = AccessPattern::strided(128, 128);
    EXPECT_EQ(m.traffic_bytes(4096, dense), 4096u);
}

TEST_F(CopyModelTest, StridedCopySlowerThanContiguous) {
    const SimTime contig = m.copy_cost(64_KiB, {}, {});
    const SimTime strided =
        m.copy_cost(64_KiB, AccessPattern::strided(8, 64), {}, 64_KiB / 8);
    EXPECT_GT(strided, 2 * contig);
}

TEST_F(CopyModelTest, PerBlockOverheadCharged) {
    const SimTime one = m.copy_cost(4_KiB, {}, {}, 1);
    const SimTime many = m.copy_cost(4_KiB, {}, {}, 512);
    EXPECT_EQ(many - one, 511 * m.profile().per_block_overhead);
}

TEST_F(CopyModelTest, ReadCostCheaperThanCopyForLargeStreams) {
    const SimTime rd = m.read_cost(4_MiB, AccessPattern::contig());
    const SimTime cp = m.copy_cost(4_MiB, {}, {});
    EXPECT_LT(rd, cp);
}

TEST(CopyModelProfiles, AllProfilesProduceFiniteCosts) {
    for (const auto& prof : {pentium3_800(), ultrasparc2_400(), xeon_550_quad(),
                             pentium2_400(), sunfire_750(), t3e_1200()}) {
        CopyModel cm(prof);
        const SimTime t = cm.copy_cost(256_KiB, AccessPattern::strided(64, 128), {}, 4096);
        EXPECT_GT(t, 0) << prof.name;
        EXPECT_LT(t, 1_s) << prof.name;
    }
}

}  // namespace
}  // namespace scimpi::mem
