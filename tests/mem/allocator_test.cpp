#include "mem/allocator.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hpp"
#include "common/units.hpp"

namespace scimpi::mem {
namespace {

TEST(Allocator, AllocateAndFreeRoundTrip) {
    Allocator a(1024);
    auto r = a.allocate(100, 1);
    ASSERT_TRUE(r);
    EXPECT_EQ(a.bytes_in_use(), 100u);
    EXPECT_TRUE(a.free(r.value()));
    EXPECT_EQ(a.bytes_in_use(), 0u);
    EXPECT_EQ(a.largest_free_block(), 1024u);
}

TEST(Allocator, RespectsAlignment) {
    Allocator a(4096);
    ASSERT_TRUE(a.allocate(3, 1));
    auto r = a.allocate(64, 256);
    ASSERT_TRUE(r);
    EXPECT_EQ(r.value() % 256, 0u);
}

TEST(Allocator, ZeroSizeRejected) {
    Allocator a(64);
    EXPECT_EQ(a.allocate(0).status().code(), Errc::invalid_argument);
}

TEST(Allocator, NonPow2AlignmentRejected) {
    Allocator a(64);
    EXPECT_EQ(a.allocate(8, 3).status().code(), Errc::invalid_argument);
}

TEST(Allocator, ExhaustionReturnsOutOfMemory) {
    Allocator a(128);
    ASSERT_TRUE(a.allocate(128, 1));
    EXPECT_EQ(a.allocate(1, 1).status().code(), Errc::out_of_memory);
}

TEST(Allocator, FreeUnknownOffsetRejected) {
    Allocator a(128);
    EXPECT_EQ(a.free(13).code(), Errc::invalid_argument);
}

TEST(Allocator, CoalescingAllowsFullReuse) {
    Allocator a(300);
    auto r1 = a.allocate(100, 1);
    auto r2 = a.allocate(100, 1);
    auto r3 = a.allocate(100, 1);
    ASSERT_TRUE(r1 && r2 && r3);
    // Free in an order that exercises both merge directions.
    ASSERT_TRUE(a.free(r2.value()));
    ASSERT_TRUE(a.free(r1.value()));
    ASSERT_TRUE(a.free(r3.value()));
    EXPECT_EQ(a.largest_free_block(), 300u);
    EXPECT_TRUE(a.allocate(300, 1));
}

TEST(Allocator, FragmentationLimitsLargestBlock) {
    Allocator a(400);
    auto r1 = a.allocate(100, 1);
    auto r2 = a.allocate(100, 1);
    auto r3 = a.allocate(100, 1);
    auto r4 = a.allocate(100, 1);
    ASSERT_TRUE(r1 && r2 && r3 && r4);
    ASSERT_TRUE(a.free(r1.value()));
    ASSERT_TRUE(a.free(r3.value()));
    EXPECT_EQ(a.largest_free_block(), 100u);
    EXPECT_EQ(a.allocate(150, 1).status().code(), Errc::out_of_memory);
}

TEST(Allocator, RandomizedStressPreservesInvariants) {
    Rng rng(42);
    Allocator a(1_MiB);
    std::vector<std::size_t> live;
    std::size_t expected_in_use = 0;
    std::vector<std::size_t> sizes;  // parallel to live

    for (int step = 0; step < 5000; ++step) {
        if (live.empty() || rng.chance(0.6)) {
            const std::size_t sz = 1 + rng.below(8_KiB);
            const std::size_t align = std::size_t{1} << rng.below(8);
            auto r = a.allocate(sz, align);
            if (r) {
                EXPECT_EQ(r.value() % align, 0u);
                live.push_back(r.value());
                sizes.push_back(sz);
                expected_in_use += sz;
            }
        } else {
            const std::size_t idx = rng.below(live.size());
            ASSERT_TRUE(a.free(live[idx]));
            expected_in_use -= sizes[idx];
            live.erase(live.begin() + static_cast<std::ptrdiff_t>(idx));
            sizes.erase(sizes.begin() + static_cast<std::ptrdiff_t>(idx));
        }
        ASSERT_EQ(a.bytes_in_use(), expected_in_use);
        ASSERT_EQ(a.allocation_count(), live.size());
    }
    for (std::size_t off : live) ASSERT_TRUE(a.free(off));
    EXPECT_EQ(a.bytes_in_use(), 0u);
    EXPECT_EQ(a.largest_free_block(), 1_MiB);
}

TEST(Allocator, NoOverlapAmongLiveAllocations) {
    Rng rng(7);
    Allocator a(64_KiB);
    std::vector<std::pair<std::size_t, std::size_t>> live;  // offset,size
    for (int i = 0; i < 200; ++i) {
        const std::size_t sz = 1 + rng.below(2_KiB);
        auto r = a.allocate(sz, 16);
        if (!r) break;
        for (const auto& [off, len] : live) {
            const bool disjoint = r.value() + sz <= off || off + len <= r.value();
            ASSERT_TRUE(disjoint) << "overlap at " << r.value();
        }
        live.emplace_back(r.value(), sz);
    }
    EXPECT_GT(live.size(), 10u);
}

}  // namespace
}  // namespace scimpi::mem
