#include "sci/fabric.hpp"

#include <gtest/gtest.h>

#include "sim/sync.hpp"

namespace scimpi::sci {
namespace {

Fabric make_ring_fabric(int nodes) { return Fabric(Topology::ring(nodes), SciParams{}); }

TEST(Fabric, NominalLinkBandwidthMatchesPaper) {
    SciParams p;
    p.link_mhz = 166.0;
    EXPECT_NEAR(p.nominal_link_bw(), 633.0, 1.0);  // paper: 633 MiB/s
    p.link_mhz = 200.0;
    EXPECT_NEAR(p.nominal_link_bw(), 762.0, 1.5);  // paper: 762 MiB/s
}

TEST(Fabric, UncontendedBandwidthIsSourceCapped) {
    auto f = make_ring_fabric(8);
    f.register_transfer(0, 1);
    EXPECT_DOUBLE_EQ(f.effective_bw(0, 1, 100.0), 100.0);
    f.unregister_transfer(0, 1);
}

TEST(Fabric, LinkSharingDividesBandwidth) {
    auto f = make_ring_fabric(8);
    // Four transfers crossing link 0.
    for (int i = 0; i < 4; ++i) f.register_transfer(0, 1);
    const double per_link =
        f.params().nominal_link_bw() * 64.0 / 80.0;  // header efficiency
    EXPECT_NEAR(f.effective_bw(0, 1, 1e9), per_link / 4.0, 1.0);
    for (int i = 0; i < 4; ++i) f.unregister_transfer(0, 1);
}

TEST(Fabric, BottleneckLinkGoverns) {
    auto f = make_ring_fabric(8);
    f.register_transfer(0, 4);   // uses links 0..3
    f.register_transfer(2, 3);   // contends on link 2
    f.register_transfer(2, 3);
    const double eff = f.effective_bw(0, 4, 1e9);
    const double per_link = f.params().nominal_link_bw() * 0.8;
    EXPECT_NEAR(eff, per_link / 3.0, 1.0);  // link 2 has 3 users
    f.unregister_transfer(0, 4);
    f.unregister_transfer(2, 3);
    f.unregister_transfer(2, 3);
}

TEST(Fabric, UnregisterUnderflowPanics) {
    auto f = make_ring_fabric(4);
    EXPECT_THROW(f.unregister_transfer(0, 1), Panic);
}

TEST(Fabric, AccountTracksPayloadWireAndEcho) {
    auto f = make_ring_fabric(8);
    f.account(0, 2, 6400);  // 100 packets over links 0 and 1
    for (int link : {0, 1}) {
        EXPECT_EQ(f.link_stats(link).payload_bytes, 6400u);
        EXPECT_EQ(f.link_stats(link).wire_bytes, 6400u + 100u * 16u);
        EXPECT_EQ(f.link_stats(link).echo_bytes, 0u);
    }
    // Echo returns over the remaining links 2..7.
    for (int link = 2; link < 8; ++link) {
        EXPECT_EQ(f.link_stats(link).payload_bytes, 0u);
        EXPECT_GT(f.link_stats(link).echo_bytes, 0u);
    }
    f.reset_stats();
    EXPECT_EQ(f.total_wire_bytes(), 0u);
}

TEST(Fabric, SelfAccountIsNoop) {
    auto f = make_ring_fabric(4);
    f.account(1, 1, 4096);
    EXPECT_EQ(f.total_wire_bytes(), 0u);
}

TEST(Fabric, TimedTransferChargesExpectedTime) {
    sim::Engine eng;
    auto f = make_ring_fabric(4);
    eng.spawn("mover", [&](sim::Process& p) {
        const SimTime t = f.timed_transfer(p, 0, 2, 1_MiB, 100.0);
        // 1 MiB at 100 MiB/s = 10 ms (uncontended, source-capped).
        EXPECT_NEAR(to_ms(t), 10.0, 0.5);
        EXPECT_EQ(p.now(), t);
    });
    eng.run();
}

TEST(Fabric, ConcurrentTransfersShareSaturatedLink) {
    sim::Engine eng;
    auto f = make_ring_fabric(8);
    // Two transfers over the same links, each wanting the full link rate.
    std::vector<SimTime> done(2);
    for (int i = 0; i < 2; ++i)
        eng.spawn("mover" + std::to_string(i), [&, i](sim::Process& p) {
            f.timed_transfer(p, 0, 1, 4_MiB, 1e9, 64_KiB);
            done[static_cast<std::size_t>(i)] = p.now();
        });
    eng.run();
    // Each should take roughly twice the solo time: 4 MiB at ~506/2 MiB/s.
    const double solo_ms = 4.0 / (633.0 * 0.8) * 1e3;
    EXPECT_GT(to_ms(done[0]), 1.7 * solo_ms);
    EXPECT_LT(to_ms(done[0]), 2.4 * solo_ms);
}

TEST(Fabric, HigherLinkFrequencyScalesThroughput) {
    for (const double mhz : {166.0, 200.0}) {
        sim::Engine eng;
        SciParams p;
        p.link_mhz = mhz;
        Fabric f(Topology::ring(8), p);
        SimTime elapsed = 0;
        // Saturate: 8 transfers on one link.
        sim::SimBarrier bar(8);
        for (int i = 0; i < 8; ++i)
            eng.spawn("m" + std::to_string(i), [&](sim::Process& pr) {
                bar.arrive_and_wait(pr);
                f.timed_transfer(pr, 0, 1, 1_MiB, 1e9, 64_KiB);
                elapsed = std::max(elapsed, pr.now());
            });
        eng.run();
        const double agg_bw = bandwidth_mib(8_MiB, elapsed);
        EXPECT_NEAR(agg_bw, p.nominal_link_bw() * 0.8, p.nominal_link_bw() * 0.1)
            << "link " << mhz << " MHz";
    }
}

}  // namespace
}  // namespace scimpi::sci
