#include "sci/dma.hpp"

#include <gtest/gtest.h>

#include <cstring>

#include "sci_fixture.hpp"

namespace scimpi::sci {
namespace {

using testing::MiniCluster;

struct DmaFixture : MiniCluster {
    DmaFixture() : MiniCluster(2), dma(engine, *adapters[0]) {}
    DmaEngine dma;
};

TEST(DmaEngine, AsyncWriteCompletesAndDeliversData) {
    DmaFixture c;
    const auto seg = c.export_segment(1, 1_MiB);
    std::vector<std::byte> data(256_KiB, std::byte{0x5a});
    c.engine.spawn("p", [&](sim::Process& p) {
        auto map = c.import(0, seg);
        auto h = c.dma.post_write(p, map, 0, data.data(), data.size());
        h->wait(p);
        EXPECT_TRUE(h->result);
        EXPECT_EQ(std::memcmp(map.mem.data(), data.data(), data.size()), 0);
    });
    c.engine.run();
}

TEST(DmaEngine, CpuOverlapsWithDmaTransfer) {
    DmaFixture c;
    const auto seg = c.export_segment(1, 4_MiB);
    std::vector<std::byte> data(4_MiB, std::byte{1});
    c.engine.spawn("p", [&](sim::Process& p) {
        auto map = c.import(0, seg);
        const SimTime t0 = p.now();
        auto h = c.dma.post_write(p, map, 0, data.data(), data.size());
        const SimTime post_cost = p.now() - t0;
        // Posting returns long before the ~17 ms transfer finishes.
        EXPECT_LT(to_us(post_cost), 100.0);
        // Simulated compute overlapping the DMA.
        p.delay(5_ms);
        h->wait(p);
        EXPECT_TRUE(h->result);
        const SimTime total = p.now() - t0;
        // Total must be about the transfer time, not transfer + compute.
        EXPECT_LT(to_ms(total), 25.0);
        EXPECT_GT(to_ms(total), 15.0);
    });
    c.engine.run();
}

TEST(DmaEngine, DescriptorsExecuteInFifoOrder) {
    DmaFixture c;
    const auto seg = c.export_segment(1, 64_KiB);
    // Two writes to the same location: the later descriptor must win.
    std::vector<std::byte> a(4_KiB, std::byte{0xaa});
    std::vector<std::byte> b(4_KiB, std::byte{0xbb});
    c.engine.spawn("p", [&](sim::Process& p) {
        auto map = c.import(0, seg);
        auto h1 = c.dma.post_write(p, map, 0, a.data(), a.size());
        auto h2 = c.dma.post_write(p, map, 0, b.data(), b.size());
        h2->wait(p);
        EXPECT_TRUE(h1->done->is_set());  // FIFO: h1 finished before h2
        EXPECT_EQ(map.mem[0], std::byte{0xbb});
    });
    c.engine.run();
}

TEST(DmaEngine, AsyncReadRoundTrip) {
    DmaFixture c;
    const auto seg = c.export_segment(1, 64_KiB);
    c.engine.spawn("p", [&](sim::Process& p) {
        auto map = c.import(0, seg);
        std::memset(map.mem.data(), 0x77, 8_KiB);
        std::vector<std::byte> out(8_KiB);
        auto h = c.dma.post_read(p, map, 0, out.data(), out.size());
        h->wait(p);
        EXPECT_TRUE(h->result);
        EXPECT_EQ(std::memcmp(out.data(), map.mem.data(), out.size()), 0);
    });
    c.engine.run();
}

}  // namespace
}  // namespace scimpi::sci
