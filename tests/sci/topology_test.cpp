#include "sci/topology.hpp"

#include <gtest/gtest.h>

#include <set>

namespace scimpi::sci {
namespace {

TEST(Topology, RingLinkEndpoints) {
    const auto t = Topology::ring(4);
    EXPECT_EQ(t.nodes(), 4);
    EXPECT_EQ(t.links(), 4);
    for (int i = 0; i < 4; ++i) {
        EXPECT_EQ(t.link_from(i), i);
        EXPECT_EQ(t.link_to(i), (i + 1) % 4);
    }
}

TEST(Topology, RingRouteFollowsDownstreamDirection) {
    const auto t = Topology::ring(8);
    EXPECT_EQ(t.route(0, 3), (std::vector<int>{0, 1, 2}));
    // Wrapping route: 6 -> 1 crosses links 6, 7, 0.
    EXPECT_EQ(t.route(6, 1), (std::vector<int>{6, 7, 0}));
    EXPECT_TRUE(t.route(5, 5).empty());
}

TEST(Topology, RingHops) {
    const auto t = Topology::ring(8);
    EXPECT_EQ(t.hops(0, 1), 1);
    EXPECT_EQ(t.hops(0, 7), 7);  // unidirectional: all the way around
    EXPECT_EQ(t.hops(3, 3), 0);
}

TEST(Topology, EchoRouteCompletesTheRing) {
    const auto t = Topology::ring(8);
    // Request 0 -> 3 plus echo 3 -> 0 must cover every ring link exactly once.
    std::set<int> covered;
    for (int l : t.route(0, 3)) covered.insert(l);
    for (int l : t.echo_route(0, 3)) covered.insert(l);
    EXPECT_EQ(covered.size(), 8u);
    EXPECT_EQ(t.route(0, 3).size() + t.echo_route(0, 3).size(), 8u);
}

TEST(Topology, SingleNodeRingHasSelfLink) {
    const auto t = Topology::ring(1);
    EXPECT_EQ(t.nodes(), 1);
    EXPECT_TRUE(t.route(0, 0).empty());
}

TEST(Topology, Torus2dDimensions) {
    const auto t = Topology::torus2d(4, 2);
    EXPECT_EQ(t.nodes(), 8);
    // 2 horizontal rings of 4 links + 4 vertical rings of 2 links.
    EXPECT_EQ(t.links(), 2 * 4 + 4 * 2);
}

TEST(Topology, TorusRoutesDimensionOrder) {
    // 3x3 torus; node id = y*3 + x.
    const auto t = Topology::torus2d(3, 3);
    // 0 (0,0) -> 4 (1,1): one hop in x (0->1), one hop in y (row0->row1).
    EXPECT_EQ(t.hops(0, 4), 2);
    // Same row: pure x routing.
    EXPECT_EQ(t.hops(0, 2), 2);  // 0->1->2 along the row ring
    // Same column: pure y routing.
    EXPECT_EQ(t.hops(0, 6), 2);  // (0,0)->(0,1)->(0,2)
}

TEST(Topology, TorusAllPairsReachable) {
    const auto t = Topology::torus2d(4, 3);
    for (int s = 0; s < t.nodes(); ++s)
        for (int d = 0; d < t.nodes(); ++d) {
            if (s == d) continue;
            EXPECT_GE(t.hops(s, d), 1) << s << "->" << d;
            // Route links must be contiguous: each link starts where the
            // previous one ended.
            int cur = s;
            for (int l : t.route(s, d)) {
                EXPECT_EQ(t.link_from(l), cur);
                cur = t.link_to(l);
            }
            EXPECT_EQ(cur, d);
        }
}

TEST(Topology, RingRouteChainsToDestination) {
    const auto t = Topology::ring(8);
    for (int s = 0; s < 8; ++s)
        for (int d = 0; d < 8; ++d) {
            int cur = s;
            for (int l : t.route(s, d)) {
                EXPECT_EQ(t.link_from(l), cur);
                cur = t.link_to(l);
            }
            EXPECT_EQ(cur, d);
        }
}


TEST(Topology, Torus3dDimensionsAndLinks) {
    const auto t = Topology::torus3d(4, 3, 2);
    EXPECT_EQ(t.nodes(), 24);
    // x rings: 3*2 rings of 4 links; y rings: 4*2 of 3; z rings: 3*4 of 2.
    EXPECT_EQ(t.links(), 6 * 4 + 8 * 3 + 12 * 2);
}

TEST(Topology, Torus3dDimensionOrderHops) {
    const auto t = Topology::torus3d(3, 3, 3);
    const auto id = [](int x, int y, int z) { return (z * 3 + y) * 3 + x; };
    // One hop per dimension for the body-diagonal neighbour.
    EXPECT_EQ(t.hops(id(0, 0, 0), id(1, 1, 1)), 3);
    // Pure z move.
    EXPECT_EQ(t.hops(id(2, 1, 0), id(2, 1, 2)), 2);
    // Wrap-around in x: 2 -> 0 is one downstream hop on a 3-ring.
    EXPECT_EQ(t.hops(id(2, 0, 0), id(0, 0, 0)), 1);
}

TEST(Topology, Torus3dAllPairsRoutesChain) {
    const auto t = Topology::torus3d(3, 2, 2);
    for (int s = 0; s < t.nodes(); ++s)
        for (int d = 0; d < t.nodes(); ++d) {
            int cur = s;
            for (int l : t.route(s, d)) {
                ASSERT_EQ(t.link_from(l), cur);
                cur = t.link_to(l);
            }
            ASSERT_EQ(cur, d) << s << "->" << d;
        }
}

}  // namespace
}  // namespace scimpi::sci
