// Shared test fixture: a small simulated SCI cluster (engine + dispatcher +
// ring fabric + node memories + adapters + segment directory).
#pragma once

#include <memory>
#include <vector>

#include "common/config.hpp"
#include "mem/node_memory.hpp"
#include "sci/adapter.hpp"
#include "sci/dma.hpp"
#include "sci/fabric.hpp"
#include "sci/segment.hpp"
#include "sim/dispatcher.hpp"
#include "sim/engine.hpp"
#include "sim/sync.hpp"

namespace scimpi::sci::testing {

struct MiniCluster {
    explicit MiniCluster(int nodes, Config cfg = default_config(),
                         SciParams params = SciParams{},
                         std::size_t arena = 8_MiB)
        : dispatcher(engine), fabric(Topology::ring(nodes), params) {
        for (int n = 0; n < nodes; ++n) {
            memories.push_back(std::make_unique<mem::NodeMemory>(n, arena));
            adapters.push_back(std::make_unique<SciAdapter>(
                n, fabric, dispatcher, mem::pentium3_800(), cfg));
        }
    }

    /// Export `bytes` from node `n`, returning the segment id.
    SegmentId export_segment(int n, std::size_t bytes) {
        auto span = memories[static_cast<std::size_t>(n)]->allocate(bytes);
        SCIMPI_REQUIRE(span.is_ok(), "fixture allocation failed");
        return directory.create(n, span.value());
    }

    SciMapping import(int origin, SegmentId seg) {
        auto m = directory.import(origin, seg);
        SCIMPI_REQUIRE(m.is_ok(), "fixture import failed");
        return m.value();
    }

    sim::Engine engine;
    sim::Dispatcher dispatcher;
    Fabric fabric;
    SegmentDirectory directory;
    std::vector<std::unique_ptr<mem::NodeMemory>> memories;
    std::vector<std::unique_ptr<SciAdapter>> adapters;
};

}  // namespace scimpi::sci::testing
