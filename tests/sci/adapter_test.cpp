#include "sci/adapter.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <numeric>
#include <vector>

#include "sci_fixture.hpp"

namespace scimpi::sci {
namespace {

using testing::MiniCluster;

std::vector<std::byte> pattern_bytes(std::size_t n, int seed = 1) {
    std::vector<std::byte> v(n);
    for (std::size_t i = 0; i < n; ++i)
        v[i] = static_cast<std::byte>((i * 31 + static_cast<std::size_t>(seed)) & 0xff);
    return v;
}

TEST(Adapter, WriteDeliversBytesAfterBarrier) {
    MiniCluster c(2);
    const auto seg = c.export_segment(1, 4_KiB);
    const auto data = pattern_bytes(1_KiB);
    c.engine.spawn("writer", [&](sim::Process& p) {
        auto map = c.import(0, seg);
        ASSERT_TRUE(c.adapters[0]->write(p, map, 0, data.data(), data.size()));
        c.adapters[0]->store_barrier(p);
        EXPECT_EQ(std::memcmp(map.mem.data(), data.data(), data.size()), 0);
    });
    c.engine.run();
}

TEST(Adapter, StoresArePostedNotImmediate) {
    MiniCluster c(2);
    const auto seg = c.export_segment(1, 4_KiB);
    const auto data = pattern_bytes(64);
    MiniCluster* cp = &c;
    c.engine.spawn("writer", [&, cp](sim::Process& p) {
        auto map = cp->import(0, seg);
        ASSERT_TRUE(cp->adapters[0]->write(p, map, 0, data.data(), data.size()));
        // The call returned, but the pipeline latency has not elapsed:
        // the target memory must still be zero.
        EXPECT_NE(std::memcmp(map.mem.data(), data.data(), data.size()), 0);
        p.delay(cp->fabric.params().write_latency + 1);
        EXPECT_EQ(std::memcmp(map.mem.data(), data.data(), data.size()), 0);
    });
    c.engine.run();
}

TEST(Adapter, BarrierWaitsForAllPendingStores) {
    MiniCluster c(2);
    const auto seg = c.export_segment(1, 64_KiB);
    const auto data = pattern_bytes(8_KiB);
    c.engine.spawn("writer", [&](sim::Process& p) {
        auto map = c.import(0, seg);
        for (int i = 0; i < 8; ++i)
            ASSERT_TRUE(c.adapters[0]->write(p, map, static_cast<std::size_t>(i) * 8_KiB,
                                             data.data(), data.size()));
        c.adapters[0]->store_barrier(p);
        for (int i = 0; i < 8; ++i)
            EXPECT_EQ(std::memcmp(map.mem.data() + static_cast<std::size_t>(i) * 8_KiB,
                                  data.data(), data.size()),
                      0)
                << "chunk " << i;
    });
    c.engine.run();
    EXPECT_EQ(c.adapters[0]->stats().barriers, 1u);
}

TEST(Adapter, ContiguousAscendingStreamReachesBurstBandwidth) {
    MiniCluster c(2);
    const auto seg = c.export_segment(1, 1_MiB);
    const auto data = pattern_bytes(64_KiB);
    c.engine.spawn("writer", [&](sim::Process& p) {
        auto map = c.import(0, seg);
        const SimTime t0 = p.now();
        // 16 ascending 64 KiB writes = 1 MiB continuation stream.
        for (int i = 0; i < 16; ++i)
            ASSERT_TRUE(c.adapters[0]->write(p, map, static_cast<std::size_t>(i) * 64_KiB,
                                             data.data(), data.size()));
        const double bw = bandwidth_mib(1_MiB, p.now() - t0);
        // First ramp at strided rate, then burst: between the two rates.
        EXPECT_GT(bw, c.fabric.params().strided_burst_bw * 0.95);
        EXPECT_LT(bw, c.fabric.params().burst_bw * 1.05);
    });
    c.engine.run();
    EXPECT_EQ(c.adapters[0]->stats().stream_restarts, 1u);
}

TEST(Adapter, ScatteredSmallAlignedWritesLandInPaperBand) {
    // Section 4.3: 8-byte strided writes achieve 5-28 MiB/s; strides that are
    // multiples of 32 give the maximum.
    MiniCluster c(2);
    const auto seg = c.export_segment(1, 1_MiB);
    const std::uint64_t v = 0x0123456789abcdefull;
    double aligned_bw = 0.0;
    double misaligned_bw = 0.0;
    c.engine.spawn("writer", [&](sim::Process& p) {
        auto map = c.import(0, seg);
        auto run = [&](std::size_t stride) {
            const SimTime t0 = p.now();
            std::size_t n = 0;
            for (std::size_t off = 0; off + 8 <= 256_KiB; off += stride, ++n)
                EXPECT_TRUE(c.adapters[0]->write(p, map, off, &v, 8));
            return bandwidth_mib(n * 8, p.now() - t0);
        };
        aligned_bw = run(32);     // stride % 32 == 0: best case
        misaligned_bw = run(28);  // blocks straddle WC lines
    });
    c.engine.run();
    EXPECT_GT(aligned_bw, 15.0);
    EXPECT_LT(aligned_bw, 35.0);
    EXPECT_GT(misaligned_bw, 3.0);
    EXPECT_LT(misaligned_bw, 12.0);
    EXPECT_GT(aligned_bw, 2.0 * misaligned_bw);
}

TEST(Adapter, DisablingWriteCombiningFlattensStrideSensitivity) {
    Config cfg = default_config();
    cfg.write_combine = false;
    MiniCluster c(2, cfg);
    const auto seg = c.export_segment(1, 1_MiB);
    const std::uint64_t v = 42;
    std::vector<double> bws;
    c.engine.spawn("writer", [&](sim::Process& p) {
        auto map = c.import(0, seg);
        for (const std::size_t stride : {16u, 28u, 32u, 40u, 64u}) {
            const SimTime t0 = p.now();
            std::size_t n = 0;
            for (std::size_t off = 0; off + 8 <= 128_KiB; off += stride, ++n)
                EXPECT_TRUE(c.adapters[0]->write(p, map, off, &v, 8));
            bws.push_back(bandwidth_mib(n * 8, p.now() - t0));
        }
    });
    c.engine.run();
    // All strides behave identically without write-combining...
    for (std::size_t i = 1; i < bws.size(); ++i) EXPECT_NEAR(bws[i], bws[0], 0.5);
    // ...at roughly half the combined peak (paper: "about 50%").
    EXPECT_LT(bws[0], c.fabric.params().uncached_bw * 1.05);
}

TEST(Adapter, TinyContinuationBlocksHitGatherTimeout) {
    MiniCluster c(2);
    const auto seg = c.export_segment(1, 1_MiB);
    const std::uint64_t v = 7;
    c.engine.spawn("writer", [&](sim::Process& p) {
        auto map = c.import(0, seg);
        // Ascending contiguous 8-byte stores: each is a continuation but
        // below wc_gather_min, so each flushes via the gather timeout.
        for (std::size_t off = 0; off < 8_KiB; off += 8)
            EXPECT_TRUE(c.adapters[0]->write(p, map, off, &v, 8));
    });
    c.engine.run();
    EXPECT_GT(c.adapters[0]->stats().gather_timeouts, 1000u);
}

TEST(Adapter, LargeSourceBuffersDipToMemoryFeedLimit) {
    // Figure 1 footnote 2: PIO bandwidth drops past 128 KiB because the
    // source no longer fits in L2.
    MiniCluster c(2);
    const auto seg = c.export_segment(1, 2_MiB);
    double bw_small = 0.0;
    double bw_large = 0.0;
    c.engine.spawn("writer", [&](sim::Process& p) {
        auto map = c.import(0, seg);
        const auto small = pattern_bytes(64_KiB);
        const auto large = pattern_bytes(1_MiB);
        // Warm the stream so both measure continuation behaviour. Write the
        // small buffer 4x back-to-back ascending vs the large buffer once.
        SimTime t0 = p.now();
        for (int i = 0; i < 4; ++i)
            ASSERT_TRUE(c.adapters[0]->write(p, map, static_cast<std::size_t>(i) * 64_KiB,
                                             small.data(), small.size(), small.size()));
        bw_small = bandwidth_mib(256_KiB, p.now() - t0);
        t0 = p.now();
        ASSERT_TRUE(c.adapters[0]->write(p, map, 1_MiB, large.data(), large.size(),
                                         large.size()));
        bw_large = bandwidth_mib(1_MiB, p.now() - t0);
    });
    c.engine.run();
    EXPECT_GT(bw_small, bw_large);
    EXPECT_NEAR(bw_large, c.fabric.params().pio_src_mem_bw, 10.0);
}

TEST(Adapter, RemoteReadsAreMuchSlowerThanWrites) {
    MiniCluster c(2);
    const auto seg = c.export_segment(1, 1_MiB);
    c.engine.spawn("p", [&](sim::Process& p) {
        auto map = c.import(0, seg);
        const auto data = pattern_bytes(256_KiB);
        SimTime t0 = p.now();
        ASSERT_TRUE(c.adapters[0]->write(p, map, 0, data.data(), data.size()));
        c.adapters[0]->store_barrier(p);
        const SimTime t_write = p.now() - t0;

        std::vector<std::byte> out(256_KiB);
        t0 = p.now();
        ASSERT_TRUE(c.adapters[0]->read(p, map, 0, out.data(), out.size()));
        const SimTime t_read = p.now() - t0;

        EXPECT_GT(t_read, 2 * t_write);  // paper: "only a fraction"
        EXPECT_EQ(out, data);
    });
    c.engine.run();
}

TEST(Adapter, SmallReadLatencyIsMicroseconds) {
    MiniCluster c(2);
    const auto seg = c.export_segment(1, 4_KiB);
    c.engine.spawn("p", [&](sim::Process& p) {
        auto map = c.import(0, seg);
        std::uint64_t v = 0;
        const SimTime t0 = p.now();
        ASSERT_TRUE(c.adapters[0]->read(p, map, 0, &v, 8));
        const double us = to_us(p.now() - t0);
        EXPECT_GT(us, 1.0);
        EXPECT_LT(us, 8.0);
    });
    c.engine.run();
}

TEST(Adapter, LoopbackMappingUsesLocalCopy) {
    MiniCluster c(2);
    const auto seg = c.export_segment(0, 64_KiB);
    c.engine.spawn("p", [&](sim::Process& p) {
        auto map = c.import(0, seg);  // same node: not remote
        EXPECT_FALSE(map.remote());
        const auto data = pattern_bytes(32_KiB);
        ASSERT_TRUE(c.adapters[0]->write(p, map, 0, data.data(), data.size()));
        // Local copies are immediate (no posted-store latency).
        EXPECT_EQ(std::memcmp(map.mem.data(), data.data(), data.size()), 0);
    });
    c.engine.run();
}

TEST(Adapter, OutOfBoundsAccessPanics) {
    MiniCluster c(2);
    const auto seg = c.export_segment(1, 1_KiB);
    c.engine.spawn("p", [&](sim::Process& p) {
        auto map = c.import(0, seg);
        std::uint64_t v = 0;
        EXPECT_THROW((void)c.adapters[0]->write(p, map, 1020, &v, 8), Panic);
        EXPECT_THROW((void)c.adapters[0]->read(p, map, 4_KiB, &v, 8), Panic);
    });
    c.engine.run();
}

TEST(Adapter, ErrorInjectionCountsRetriesAndStillDelivers) {
    Config cfg = default_config();
    cfg.link_error_rate = 0.02;
    cfg.seed = 99;
    MiniCluster c(2, cfg);
    const auto seg = c.export_segment(1, 1_MiB);
    const auto data = pattern_bytes(512_KiB);
    c.engine.spawn("p", [&](sim::Process& p) {
        auto map = c.import(0, seg);
        ASSERT_TRUE(c.adapters[0]->write(p, map, 0, data.data(), data.size()));
        c.adapters[0]->store_barrier(p);
        EXPECT_EQ(std::memcmp(map.mem.data(), data.data(), data.size()), 0);
    });
    c.engine.run();
    EXPECT_GT(c.adapters[0]->stats().retries, 20u);  // ~2% of 8192 packets
}

TEST(Adapter, ExcessiveErrorsSurfaceAsLinkFailure) {
    Config cfg = default_config();
    cfg.link_error_rate = 0.95;
    cfg.max_retries = 3;
    MiniCluster c(2, cfg);
    const auto seg = c.export_segment(1, 1_MiB);
    const auto data = pattern_bytes(64_KiB);
    c.engine.spawn("p", [&](sim::Process& p) {
        auto map = c.import(0, seg);
        const Status st = c.adapters[0]->write(p, map, 0, data.data(), data.size());
        EXPECT_EQ(st.code(), Errc::link_failure);
    });
    c.engine.run();
}

TEST(Adapter, DmaBeatsPioForLargeTransfersOnly) {
    MiniCluster c(2);
    const auto seg = c.export_segment(1, 4_MiB);
    c.engine.spawn("p", [&](sim::Process& p) {
        auto map = c.import(0, seg);
        auto time_pio = [&](std::size_t n) {
            const auto data = pattern_bytes(n);
            const SimTime t0 = p.now();
            EXPECT_TRUE(c.adapters[0]->write(p, map, 0, data.data(), n, n));
            c.adapters[0]->store_barrier(p);
            return p.now() - t0;
        };
        auto time_dma = [&](std::size_t n) {
            const auto data = pattern_bytes(n);
            const SimTime t0 = p.now();
            EXPECT_TRUE(c.adapters[0]->dma_write(p, map, 0, data.data(), n));
            return p.now() - t0;
        };
        EXPECT_LT(time_pio(1_KiB), time_dma(1_KiB));   // startup dominates
        EXPECT_GT(time_pio(2_MiB), time_dma(2_MiB));   // streaming dominates
    });
    c.engine.run();
}

TEST(Adapter, StatsAccumulateAndReset) {
    MiniCluster c(2);
    const auto seg = c.export_segment(1, 64_KiB);
    c.engine.spawn("p", [&](sim::Process& p) {
        auto map = c.import(0, seg);
        const auto data = pattern_bytes(4_KiB);
        ASSERT_TRUE(c.adapters[0]->write(p, map, 0, data.data(), data.size()));
        std::vector<std::byte> out(4_KiB);
        ASSERT_TRUE(c.adapters[0]->read(p, map, 8_KiB, out.data(), out.size()));
    });
    c.engine.run();
    EXPECT_EQ(c.adapters[0]->stats().bytes_written, 4_KiB);
    EXPECT_EQ(c.adapters[0]->stats().bytes_read, 4_KiB);
    c.adapters[0]->reset_stats();
    EXPECT_EQ(c.adapters[0]->stats().write_calls, 0u);
}

}  // namespace
}  // namespace scimpi::sci
