// Unit tests for the gather fast paths of the adapter: PIO write_gather
// (direct_pack_ff's transport), chained-descriptor DMA gathers, and the
// stream-cost helper used for control payloads.
#include <gtest/gtest.h>

#include <cstring>
#include <numeric>

#include "sci_fixture.hpp"

namespace scimpi::sci {
namespace {

using testing::MiniCluster;

struct GatherFixture : MiniCluster {
    GatherFixture() : MiniCluster(2) {
        seg = export_segment(1, 1_MiB);
        src.resize(256_KiB);
        for (std::size_t i = 0; i < src.size(); ++i)
            src[i] = static_cast<std::byte>(i * 7 & 0xff);
    }
    SegmentId seg;
    std::vector<std::byte> src;
};

TEST(WriteGather, AssemblesBlocksContiguouslyAfterBarrier) {
    GatherFixture c;
    c.engine.spawn("p", [&](sim::Process& p) {
        auto map = c.import(0, c.seg);
        // Three blocks from scattered source positions.
        const std::vector<SciAdapter::ConstIovec> blocks{
            {c.src.data() + 1000, 64},
            {c.src.data() + 5000, 128},
            {c.src.data() + 9000, 32},
        };
        ASSERT_TRUE(c.adapters[0]->write_gather(p, map, 64, blocks));
        c.adapters[0]->store_barrier(p);
        EXPECT_EQ(std::memcmp(map.mem.data() + 64, c.src.data() + 1000, 64), 0);
        EXPECT_EQ(std::memcmp(map.mem.data() + 128, c.src.data() + 5000, 128), 0);
        EXPECT_EQ(std::memcmp(map.mem.data() + 256, c.src.data() + 9000, 32), 0);
    });
    c.engine.run();
}

TEST(WriteGather, LargeBlocksApproachContiguousWriteCost) {
    GatherFixture c;
    c.engine.spawn("p", [&](sim::Process& p) {
        auto map = c.import(0, c.seg);
        // One 128 KiB contiguous write...
        SimTime t0 = p.now();
        ASSERT_TRUE(c.adapters[0]->write(p, map, 0, c.src.data(), 128_KiB, 128_KiB));
        const SimTime contig = p.now() - t0;
        // ...vs the same payload as 16 gathered 8 KiB blocks.
        std::vector<SciAdapter::ConstIovec> blocks;
        for (int i = 0; i < 16; ++i)
            blocks.push_back({c.src.data() + static_cast<std::size_t>(i) * 16_KiB, 8_KiB});
        t0 = p.now();
        ASSERT_TRUE(c.adapters[0]->write_gather(p, map, 256_KiB, blocks, 128_KiB));
        const SimTime gathered = p.now() - t0;
        EXPECT_LT(gathered, contig * 1.2);
        EXPECT_GE(gathered, contig);  // never cheaper than one straight write
    });
    c.engine.run();
}

TEST(WriteGather, TinyBlocksPayGatherTimeouts) {
    GatherFixture c;
    c.engine.spawn("p", [&](sim::Process& p) {
        auto map = c.import(0, c.seg);
        std::vector<SciAdapter::ConstIovec> blocks;
        for (int i = 0; i < 512; ++i)
            blocks.push_back({c.src.data() + static_cast<std::size_t>(i) * 16, 8});
        ASSERT_TRUE(c.adapters[0]->write_gather(p, map, 0, blocks));
    });
    c.engine.run();
    EXPECT_GT(c.adapters[0]->stats().gather_timeouts, 400u);
}

TEST(WriteGather, EmptyBlockListIsFree) {
    GatherFixture c;
    c.engine.spawn("p", [&](sim::Process& p) {
        auto map = c.import(0, c.seg);
        const SimTime t0 = p.now();
        ASSERT_TRUE(c.adapters[0]->write_gather(p, map, 0, {}));
        EXPECT_EQ(p.now(), t0);
    });
    c.engine.run();
}

TEST(DmaGather, DeliversAndChargesPerDescriptor) {
    GatherFixture c;
    c.engine.spawn("p", [&](sim::Process& p) {
        auto map = c.import(0, c.seg);
        auto run = [&](std::size_t nblocks, std::size_t block) {
            std::vector<SciAdapter::ConstIovec> blocks;
            for (std::size_t i = 0; i < nblocks; ++i)
                blocks.push_back({c.src.data() + i * block * 2, block});
            const SimTime t0 = p.now();
            EXPECT_TRUE(c.adapters[0]->dma_write_gather(p, map, 0, blocks));
            return p.now() - t0;
        };
        // Same payload, 4x the descriptors: the difference is descriptor cost.
        const SimTime few = run(8, 8_KiB);
        const SimTime many = run(32, 2_KiB);
        const SimTime desc = c.fabric.params().dma_desc_cost;
        EXPECT_NEAR(static_cast<double>(many - few), static_cast<double>(24 * desc),
                    static_cast<double>(desc));
        // Data landed (DMA delivers synchronously at completion).
        EXPECT_EQ(std::memcmp(map.mem.data(), c.src.data(), 2_KiB), 0);
    });
    c.engine.run();
}

TEST(PioStreamCost, MonotoneAndFeedLimited) {
    GatherFixture c;
    const auto& a = *c.adapters[0];
    SimTime prev = 0;
    for (std::size_t len = 64; len <= 1_MiB; len *= 4) {
        const SimTime t = a.pio_stream_cost(len);
        EXPECT_GT(t, prev);
        prev = t;
    }
    // Source traffic above L2 throttles to the memory feed limit.
    const SimTime cached = a.pio_stream_cost(64_KiB, 64_KiB);
    const SimTime wasted = a.pio_stream_cost(64_KiB, 4_MiB);
    EXPECT_GT(wasted, cached);
}

TEST(ProbePeer, RoundTripCostAndTimeout) {
    GatherFixture c;
    c.engine.spawn("p", [&](sim::Process& p) {
        SimTime t0 = p.now();
        EXPECT_TRUE(c.adapters[0]->probe_peer(p, 1));
        const SimTime ok_cost = p.now() - t0;
        EXPECT_NEAR(static_cast<double>(ok_cost),
                    static_cast<double>(c.fabric.params().read_latency), 100.0);

        c.fabric.set_link_up(0, false);
        t0 = p.now();
        EXPECT_FALSE(c.adapters[0]->probe_peer(p, 1));
        const SimTime timeout_cost = p.now() - t0;
        EXPECT_GT(timeout_cost, ok_cost);  // failed probes take the full timeout
    });
    c.engine.run();
}

}  // namespace
}  // namespace scimpi::sci
