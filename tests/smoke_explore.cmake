# Schedule-explorer smoke test (DESIGN.md §16), driven end to end through
# the race_demo --pscw modes, which self-verify their own expectations:
#   1. Single deterministic runs over many seeds stay clean — the planted
#      PSCW bug is genuinely order-dependent, not seed-dependent.
#   2. --explore hunts the schedule space, finds the race within the
#      budget, and writes a minimized decision trace; race_demo itself
#      verifies the trace replays to the byte-identical checker report.
#   3. SCIMPI_EXPLORE_REPLAY=<trace> reproduces the violation through the
#      plain (non-explorer) run path — the portable-repro contract.
#
# Expects: RACE_DEMO, OUT_DIR.
set(trace_file "${OUT_DIR}/smoke_explore_pscw.trace")
file(REMOVE "${trace_file}")

execute_process(COMMAND "${RACE_DEMO}" --pscw --seeds 100
                RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR
          "pscw demo was dirty in a plain run (want clean):\n${out}${err}")
endif()

execute_process(COMMAND "${RACE_DEMO}" --pscw --explore --trace "${trace_file}"
                RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "explorer did not find the planted race:\n${out}${err}")
endif()
string(FIND "${out}" "race found" found_pos)
string(FIND "${out}" "trace replay byte-identical" replay_pos)
if(found_pos EQUAL -1 OR replay_pos EQUAL -1)
  message(FATAL_ERROR "explore output lacks finding/replay lines:\n${out}")
endif()
if(NOT EXISTS "${trace_file}")
  message(FATAL_ERROR "explorer did not write the decision trace")
endif()
file(READ "${trace_file}" trace_text)
string(FIND "${trace_text}" "# scimpi explore trace v1" hdr_pos)
if(NOT hdr_pos EQUAL 0)
  message(FATAL_ERROR "trace file lacks the v1 header:\n${trace_text}")
endif()

# The portable repro: a fresh process, plain run path, trace from disk.
execute_process(
  COMMAND ${CMAKE_COMMAND} -E env "SCIMPI_EXPLORE_REPLAY=${trace_file}"
          "${RACE_DEMO}" --pscw
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR
          "SCIMPI_EXPLORE_REPLAY did not reproduce the race:\n${out}${err}")
endif()
