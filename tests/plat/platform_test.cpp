#include <gtest/gtest.h>

#include "plat/platform_model.hpp"

namespace scimpi::plat {
namespace {

TEST(Profiles, AllPlatformsHaveDistinctCodes) {
    std::vector<std::string> codes;
    for (const auto id : all_platforms()) codes.push_back(spec(id).code);
    std::sort(codes.begin(), codes.end());
    EXPECT_EQ(std::unique(codes.begin(), codes.end()), codes.end());
    EXPECT_EQ(codes.size(), 8u);
}

TEST(Profiles, OscSupportMatchesTable1) {
    EXPECT_TRUE(spec(PlatformId::cray_t3e).supports_osc);
    EXPECT_FALSE(spec(PlatformId::sunfire_gigabit).supports_osc);  // footnote a
    EXPECT_TRUE(spec(PlatformId::sunfire_shm).supports_osc);
    EXPECT_TRUE(spec(PlatformId::lam_fastethernet).supports_osc);
    EXPECT_TRUE(spec(PlatformId::lam_xeon_shm).supports_osc);
    EXPECT_TRUE(spec(PlatformId::lam_xeon_shm).osc_get_deadlocks);  // footnote b
    EXPECT_FALSE(spec(PlatformId::score_myrinet).supports_osc);
    EXPECT_FALSE(spec(PlatformId::score_p2_shm).supports_osc);
}

TEST(PlatformModel, NoncontigEfficiencyBelowOneForGenericPlatforms) {
    for (const auto id : {PlatformId::sunfire_gigabit, PlatformId::lam_fastethernet,
                          PlatformId::score_myrinet, PlatformId::score_p2_shm}) {
        PlatformModel m(id);
        for (const std::size_t block : {64u, 1024u, 16384u}) {
            const double eff = m.noncontig_efficiency(256_KiB, block);
            EXPECT_GT(eff, 0.0) << spec(id).code;
            EXPECT_LT(eff, 1.0) << spec(id).code << " block " << block;
        }
    }
}

TEST(PlatformModel, SunShmEfficiencyJumpsAt16KiB) {
    // Figure 10: Sun MPI shm efficiency "jumps from 0.5 to 1 for blocksizes
    // of 16k and above".
    PlatformModel m(PlatformId::sunfire_shm);
    const double below = m.noncontig_efficiency(256_KiB, 8_KiB);
    const double above = m.noncontig_efficiency(256_KiB, 16_KiB);
    EXPECT_LT(below, 0.75);
    EXPECT_GT(above, 0.85);
    EXPECT_GT(above, below * 1.3);
}

TEST(PlatformModel, T3EEfficiencyWindow) {
    // Figure 10: T3E efficiency ~1 between 8 and 32 KiB, low for < 4 KiB
    // and for > 32 KiB blocks.
    PlatformModel m(PlatformId::cray_t3e);
    EXPECT_LT(m.noncontig_efficiency(256_KiB, 512), 0.6);
    EXPECT_GT(m.noncontig_efficiency(256_KiB, 16_KiB), 0.85);
    EXPECT_LT(m.noncontig_efficiency(512_KiB, 64_KiB), 0.8);
}

TEST(PlatformModel, MyrinetRegistrationDepressesMidSizes) {
    // Section 5.2: GM peak bandwidth not reached until ~700 KiB because of
    // registration throughput.
    PlatformModel m(PlatformId::score_myrinet);
    const double mid = m.transfer_bandwidth(128_KiB, 0);
    const double large = m.transfer_bandwidth(4_MiB, 0);
    EXPECT_LT(mid, large);
    EXPECT_LT(large, spec(PlatformId::score_myrinet).net.bw);
}

TEST(PlatformModel, LamOscIsSlowOverFastEthernet) {
    PlatformModel m(PlatformId::lam_fastethernet);
    // Paper: very high latencies, max ~10 MiB/s.
    EXPECT_GT(to_us(m.osc_latency(8, true)), 100.0);
    EXPECT_LT(m.osc_bandwidth(64_KiB, true), 11.0);
}

TEST(PlatformModel, ViaOscLatencyFactorVersusSci) {
    // Section 5.3: VIA one-sided ~3x-15x slower than SCI-MPICH for 1 KiB.
    PlatformModel via(PlatformId::via_smp);
    const double via_us = to_us(via.osc_latency(1024, true));
    // SCI-MPICH direct put of 1 KiB lands in the ~10 us class.
    EXPECT_GT(via_us / 10.0, 3.0);
    EXPECT_LT(via_us / 10.0, 20.0);
}

TEST(PlatformModel, OscLatencyGetsExceedPuts) {
    for (const auto id : osc_platforms()) {
        PlatformModel m(id);
        EXPECT_GT(m.osc_latency(256, false), m.osc_latency(256, true))
            << spec(id).code;
    }
}

TEST(PlatformModel, XeonShmScalesBadly) {
    // Figure 12: the 4-way Xeon "scales very badly for coarse-grained
    // accesses and delivers a bandwidth below the SCI-connected system".
    PlatformModel m(PlatformId::lam_xeon_shm);
    const double at2 = m.osc_scaling_bandwidth(2, 64_KiB);
    const double at4 = m.osc_scaling_bandwidth(4, 64_KiB);
    EXPECT_LT(at4, at2);
    EXPECT_LT(at4, 120.0);  // below the SCI plateau
}

TEST(PlatformModel, SunFireScalesBetterButDeclines) {
    PlatformModel m(PlatformId::sunfire_shm);
    const double at4 = m.osc_scaling_bandwidth(4, 64_KiB);
    const double at8 = m.osc_scaling_bandwidth(8, 64_KiB);
    const double at16 = m.osc_scaling_bandwidth(16, 64_KiB);
    EXPECT_GE(at4, at8);
    EXPECT_GT(at8, at16);         // declines beyond ~6 active processes
    EXPECT_GT(at4, 200.0);        // high-cost design: strong baseline
}

TEST(PlatformModel, T3EScalingStaysFlat) {
    PlatformModel m(PlatformId::cray_t3e);
    const double at2 = m.osc_scaling_bandwidth(2, 16_KiB);
    const double at32 = m.osc_scaling_bandwidth(32, 16_KiB);
    EXPECT_NEAR(at2, at32, at2 * 0.05);
}

TEST(PlatformModel, BandwidthMonotoneInTotalSize) {
    for (const auto id : all_platforms()) {
        PlatformModel m(id);
        double prev = 0.0;
        for (std::size_t total = 4_KiB; total <= 1_MiB; total *= 4) {
            const double bw = m.transfer_bandwidth(total, 0);
            EXPECT_GE(bw, prev * 0.8) << spec(id).code << " at " << total;
            prev = bw;
        }
    }
}

TEST(PlatformModel, OscOnUnsupportedPlatformPanics) {
    PlatformModel m(PlatformId::score_myrinet);
    EXPECT_THROW((void)m.osc_latency(8, true), Panic);
}

}  // namespace
}  // namespace scimpi::plat
