// Minimal recursive-descent JSON syntax checker for tests and tools. It
// validates structure only (no DOM): objects, arrays, strings with escapes,
// numbers, true/false/null, and rejects trailing garbage.
#pragma once

#include <cstddef>
#include <string_view>

namespace scimpi::testsupport {

class JsonChecker {
public:
    explicit JsonChecker(std::string_view text) : s_(text) {}

    /// True when the whole input is exactly one valid JSON value.
    bool valid() {
        skip_ws();
        if (!value(0)) return false;
        skip_ws();
        return pos_ == s_.size();
    }

private:
    static constexpr int kMaxDepth = 64;

    std::string_view s_;
    std::size_t pos_ = 0;

    [[nodiscard]] bool eof() const { return pos_ >= s_.size(); }
    [[nodiscard]] char peek() const { return s_[pos_]; }

    void skip_ws() {
        while (!eof() && (peek() == ' ' || peek() == '\t' || peek() == '\n' ||
                          peek() == '\r'))
            ++pos_;
    }

    bool literal(std::string_view word) {
        if (s_.substr(pos_, word.size()) != word) return false;
        pos_ += word.size();
        return true;
    }

    bool string() {
        if (eof() || peek() != '"') return false;
        ++pos_;
        while (!eof()) {
            const char c = s_[pos_++];
            if (c == '"') return true;
            if (static_cast<unsigned char>(c) < 0x20) return false;  // raw control
            if (c == '\\') {
                if (eof()) return false;
                const char e = s_[pos_++];
                if (e == 'u') {
                    for (int i = 0; i < 4; ++i) {
                        if (eof() || !is_hex(s_[pos_])) return false;
                        ++pos_;
                    }
                } else if (e != '"' && e != '\\' && e != '/' && e != 'b' &&
                           e != 'f' && e != 'n' && e != 'r' && e != 't') {
                    return false;
                }
            }
        }
        return false;  // unterminated
    }

    static bool is_hex(char c) {
        return (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f') ||
               (c >= 'A' && c <= 'F');
    }
    static bool is_digit(char c) { return c >= '0' && c <= '9'; }

    bool number() {
        const std::size_t start = pos_;
        if (!eof() && peek() == '-') ++pos_;
        while (!eof() && is_digit(peek())) ++pos_;
        if (pos_ == start || (pos_ == start + 1 && s_[start] == '-')) return false;
        if (!eof() && peek() == '.') {
            ++pos_;
            if (eof() || !is_digit(peek())) return false;
            while (!eof() && is_digit(peek())) ++pos_;
        }
        if (!eof() && (peek() == 'e' || peek() == 'E')) {
            ++pos_;
            if (!eof() && (peek() == '+' || peek() == '-')) ++pos_;
            if (eof() || !is_digit(peek())) return false;
            while (!eof() && is_digit(peek())) ++pos_;
        }
        return true;
    }

    bool value(int depth) {
        if (depth > kMaxDepth || eof()) return false;
        switch (peek()) {
            case '{': return object(depth);
            case '[': return array(depth);
            case '"': return string();
            case 't': return literal("true");
            case 'f': return literal("false");
            case 'n': return literal("null");
            default: return number();
        }
    }

    bool object(int depth) {
        ++pos_;  // '{'
        skip_ws();
        if (!eof() && peek() == '}') return ++pos_, true;
        for (;;) {
            skip_ws();
            if (!string()) return false;
            skip_ws();
            if (eof() || peek() != ':') return false;
            ++pos_;
            skip_ws();
            if (!value(depth + 1)) return false;
            skip_ws();
            if (eof()) return false;
            if (peek() == '}') return ++pos_, true;
            if (peek() != ',') return false;
            ++pos_;
        }
    }

    bool array(int depth) {
        ++pos_;  // '['
        skip_ws();
        if (!eof() && peek() == ']') return ++pos_, true;
        for (;;) {
            skip_ws();
            if (!value(depth + 1)) return false;
            skip_ws();
            if (eof()) return false;
            if (peek() == ']') return ++pos_, true;
            if (peek() != ',') return false;
            ++pos_;
        }
    }
};

inline bool json_valid(std::string_view text) { return JsonChecker(text).valid(); }

}  // namespace scimpi::testsupport
