# Flight-recorder smoke test: run the quickstart example with --record plus
# stats/trace files, then check (a) both files are well-formed JSON, (b) the
# stats report carries a valid v4 flight-recorder section (obs_check record:
# schema >= 4, cadence set, monotone non-empty timeseries, hotspots array),
# and (c) the trace contains the recorder's counter tracks for Perfetto.
#
# Expects: QUICKSTART, JSON_CHECK, OBS_CHECK, OUT_DIR.
set(stats_file "${OUT_DIR}/smoke_record_stats.json")
set(trace_file "${OUT_DIR}/smoke_record.trace.json")
file(REMOVE "${stats_file}" "${trace_file}")

execute_process(
  COMMAND ${CMAKE_COMMAND} -E env
          "SCIMPI_STATS_FILE=${stats_file}"
          "SCIMPI_TRACE_FILE=${trace_file}"
          "${QUICKSTART}" --record
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "quickstart --record exited with ${rc}")
endif()

foreach(f IN ITEMS "${stats_file}" "${trace_file}")
  if(NOT EXISTS "${f}")
    message(FATAL_ERROR "expected output file was not written: ${f}")
  endif()
  execute_process(COMMAND "${JSON_CHECK}" "${f}" RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "not valid JSON: ${f}")
  endif()
endforeach()

execute_process(COMMAND "${OBS_CHECK}" record "${stats_file}" RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "obs_check record failed on ${stats_file}")
endif()

# The trace must carry the recorder's counter tracks (utilization curves).
file(READ "${trace_file}" trace_text)
string(FIND "${trace_text}" "link0.util" util_pos)
string(FIND "${trace_text}" "sim.heap" heap_pos)
if(util_pos EQUAL -1 OR heap_pos EQUAL -1)
  message(FATAL_ERROR
          "trace lacks recorder counter tracks (link0.util / sim.heap)")
endif()
