# Bench-regression gate: run bench_scale and bench_overlap with the
# checked-in workload shapes and diff their RunReport v4 output against
# BENCH_BASELINE.json with scripts/bench_compare.py (both candidates in one
# invocation; runs match by label). Simulated metrics are bit-deterministic,
# so any diff beyond the threshold is a real behaviour change: either a
# regression to fix or an intended change that must update the baseline
# (see DESIGN.md §12 for the refresh recipe).
#
# Expects: BENCH_SCALE, BENCH_OVERLAP (binaries), COMPARE (script),
#          BASELINE (json), PYTHON, OUT_DIR.
set(new_json "${OUT_DIR}/bench_scale_current.json")
set(overlap_json "${OUT_DIR}/bench_overlap_current.json")
file(REMOVE "${new_json}" "${overlap_json}")

# Keep the gate fast: the two smallest scales only, few iterations. The
# baseline was generated with exactly these parameters.
execute_process(
  COMMAND "${BENCH_SCALE}" --json "${new_json}" --ranks 4,8 --iters 2
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out ERROR_VARIABLE out)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "bench_scale exited with ${rc}:\n${out}")
endif()
if(NOT EXISTS "${new_json}")
  message(FATAL_ERROR "bench_scale wrote no JSON")
endif()

# bench_overlap doubles as the overlap acceptance gate: a nonzero exit
# means nonblocking+async was not faster than blocking at a rendezvous size.
execute_process(
  COMMAND "${BENCH_OVERLAP}" --json "${overlap_json}" --sizes 131072 --iters 2
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out ERROR_VARIABLE out)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "bench_overlap exited with ${rc}:\n${out}")
endif()
if(NOT EXISTS "${overlap_json}")
  message(FATAL_ERROR "bench_overlap wrote no JSON")
endif()

execute_process(
  COMMAND "${PYTHON}" "${COMPARE}" "${BASELINE}" "${new_json}" "${overlap_json}"
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out ERROR_VARIABLE out)
message(STATUS "${out}")
if(NOT rc EQUAL 0)
  message(FATAL_ERROR
          "bench_compare found regressions against BENCH_BASELINE.json "
          "(rerun scripts/bench_compare.py -v for details; refresh the "
          "baseline only for intended changes)")
endif()
