// End-to-end resilience tests: fault schedules injected through the
// FaultController while real MPI traffic runs on top, exercising the
// protocol retry/backoff, degraded-mode routing and RMA path fallback
// (ISSUE 2 / DESIGN.md §8).
#include <gtest/gtest.h>

#include <cstring>
#include <numeric>
#include <vector>

#include "fault/monitor.hpp"
#include "mpi/comm.hpp"
#include "mpi/rma/window.hpp"
#include "sci/topology.hpp"

namespace scimpi::mpi {
namespace {

/// A link flap in the middle of a rendezvous transfer is absorbed by the
/// sender's exponential backoff: the send completes, the data is intact, and
/// the retry/recovery counters show the loop did the work. The same flap
/// made the seed code return link_failure straight to the caller.
TEST(Resilience, MidRendezvousLinkFlapRecovers) {
    ClusterOptions opt;
    opt.nodes = 2;
    opt.collect_stats = true;
    // Down at 100us for 1ms: the first chunk resolves its route before the
    // window opens, a later chunk start is guaranteed to land inside it.
    opt.faults.flap(100'000, 0, 1'000'000);
    double checksum = -1.0;
    Status send_st;
    Cluster c(opt);
    c.run([&](Comm& comm) {
        std::vector<double> data(256_KiB / 8);
        if (comm.rank() == 0) {
            std::iota(data.begin(), data.end(), 1.0);
            send_st = comm.send(data.data(), static_cast<int>(data.size()),
                                Datatype::float64(), 1, 0);
        } else {
            ASSERT_TRUE(comm.recv(data.data(), static_cast<int>(data.size()),
                                  Datatype::float64(), 0, 0)
                            .status);
            checksum = std::accumulate(data.begin(), data.end(), 0.0);
        }
    });
    const auto n = static_cast<double>(256_KiB / 8);
    EXPECT_TRUE(send_st) << send_st.to_string();
    EXPECT_EQ(checksum, n * (n + 1) / 2);
    const Rank::Stats& s = c.rank_state(0).stats();
    EXPECT_GT(s.send_retries, 0u);
    EXPECT_GE(s.send_recoveries, 1u);
    EXPECT_EQ(s.send_giveups, 0u);
    ASSERT_NE(c.fault_controller(), nullptr);
    EXPECT_GE(c.fault_controller()->counters().link_downs, 1u);
    EXPECT_GE(c.fault_controller()->counters().link_ups, 1u);
    EXPECT_EQ(c.stats_report().counter("mpi.send_recoveries"), s.send_recoveries);
}

/// On a torus the alternate dimension order steers a rendezvous around a
/// down link with no retries at all — degraded-mode routing is transparent
/// to the transfer and the payload survives bit-exact.
TEST(Resilience, TorusReroutePreservesChecksums) {
    ClusterOptions opt;
    opt.nodes = 9;
    opt.torus_w = 3;  // 3x3 torus; 0 -> 4 crosses both dimensions
    opt.arena_bytes = 8_MiB;
    // Kill the first link of the primary route before any traffic starts.
    const int victim = sci::Topology::torus2d(3, 3).route(0, 4).front();
    opt.faults.link_down(0, victim);
    double checksum = -1.0;
    Status send_st;
    Cluster c(opt);
    c.run([&](Comm& comm) {
        std::vector<double> data(256_KiB / 8);
        if (comm.rank() == 0) {
            std::iota(data.begin(), data.end(), 1.0);
            send_st = comm.send(data.data(), static_cast<int>(data.size()),
                                Datatype::float64(), 4, 0);
        } else if (comm.rank() == 4) {
            ASSERT_TRUE(comm.recv(data.data(), static_cast<int>(data.size()),
                                  Datatype::float64(), 0, 0)
                            .status);
            checksum = std::accumulate(data.begin(), data.end(), 0.0);
        }
    });
    const auto n = static_cast<double>(256_KiB / 8);
    EXPECT_TRUE(send_st) << send_st.to_string();
    EXPECT_EQ(checksum, n * (n + 1) / 2);
    EXPECT_GT(c.fabric().reroutes(), 0u);
    // The reroute is not a failure: nothing was retried.
    EXPECT_EQ(c.rank_state(0).stats().send_retries, 0u);
}

/// On a plain ring there is no alternate route, so when the direct-mapped
/// path to a window dies, puts and gets fall back to the emulated handler
/// path (which rides the reliable control channel) instead of failing.
TEST(Resilience, RmaFallsBackToEmulationUnderDeadRoute) {
    ClusterOptions opt;
    opt.nodes = 4;
    opt.collect_stats = true;
    opt.faults.link_down(0, 0);  // route 0 -> 1 dead for the whole run
    Win::Stats win_stats;
    std::vector<double> fetched(4, 0.0);
    double landed = 0.0;
    Cluster c(opt);
    c.run([&](Comm& comm) {
        auto mem = comm.alloc_mem(4096);
        auto* base = reinterpret_cast<double*>(mem.value().data());
        for (int i = 0; i < 4; ++i) base[i] = 10.0 * comm.rank() + i;
        auto win = comm.win_create(mem.value().data(), 4096);
        win->fence();
        if (comm.rank() == 0) {
            const double v = 777.0;
            ASSERT_TRUE(win->put(&v, 1, Datatype::float64(), 1, 8 * 100));
            ASSERT_TRUE(win->get(fetched.data(), 4, Datatype::float64(), 1, 0));
        }
        win->fence();
        if (comm.rank() == 1) landed = base[100];
        if (comm.rank() == 0) win_stats = win->stats();
        win->fence();
    });
    EXPECT_EQ(landed, 777.0);
    for (int i = 0; i < 4; ++i) EXPECT_EQ(fetched[static_cast<std::size_t>(i)], 10.0 + i);
    EXPECT_GE(win_stats.path_fallbacks, 2u);  // one put + one get redirected
    EXPECT_GE(win_stats.emulated_puts, 1u);
    EXPECT_GE(win_stats.remote_put_gets, 1u);
    EXPECT_EQ(win_stats.direct_puts, 0u);
    EXPECT_EQ(c.stats_report().counter("rma.path_fallbacks"),
              win_stats.path_fallbacks);
}

/// A permanently dead link exhausts the sender's retry budget: both sides
/// complete with Errc::peer_unreachable (the receiver via the rndv_fail
/// abort message) in bounded simulated time — no hang, no deadlock panic.
TEST(Resilience, ExhaustedRetryBudgetYieldsPeerUnreachable) {
    ClusterOptions opt;
    opt.nodes = 2;
    opt.cfg.send_retries = 4;
    opt.cfg.retry_backoff = 10'000;       // 10us, doubling
    opt.cfg.retry_backoff_max = 80'000;
    opt.cfg.retry_budget = 1'000'000;     // 1ms total
    opt.faults.link_down(500'000, 0);     // mid-transfer, never back up
    Status send_st, recv_st;
    Cluster c(opt);
    c.run([&](Comm& comm) {
        std::vector<double> data(512_KiB / 8, 3.0);
        if (comm.rank() == 0)
            send_st = comm.send(data.data(), static_cast<int>(data.size()),
                                Datatype::float64(), 1, 0);
        else
            recv_st = comm.recv(data.data(), static_cast<int>(data.size()),
                                Datatype::float64(), 0, 0)
                          .status;
    });
    EXPECT_EQ(send_st.code(), Errc::peer_unreachable) << send_st.to_string();
    EXPECT_EQ(recv_st.code(), Errc::peer_unreachable) << recv_st.to_string();
    EXPECT_GE(c.rank_state(0).stats().send_giveups, 1u);
    // Sim-time watchdog: giving up must be fast, not a disguised hang.
    EXPECT_LT(c.wtime(), 0.05);
}

/// With the connection monitor enabled, a sender backing off towards a dead
/// peer is cut short as soon as the monitor's probes declare the peer dead —
/// long before a large retry budget would run out on its own.
TEST(Resilience, MonitorDeclaresPeerDeadAndFailsFast) {
    ClusterOptions opt;
    opt.nodes = 2;
    opt.cfg.monitor_period = 50'000;      // probe every 50us
    opt.cfg.monitor_dead_after = 3;
    opt.cfg.send_retries = 1000;          // budget alone would retry ~forever
    opt.cfg.retry_backoff = 50'000;
    opt.cfg.retry_backoff_max = 50'000;
    opt.cfg.retry_budget = 1'000'000'000;
    opt.faults.link_down(0, 0);           // dead from the start, never up
    Status send_st;
    Cluster c(opt);
    c.run([&](Comm& comm) {
        // Only the sender acts: the give-up happens before the rendezvous
        // handshake, so a posted recv would have nothing to abort it.
        if (comm.rank() == 0) {
            std::vector<double> data(256_KiB / 8, 1.0);
            send_st = comm.send(data.data(), static_cast<int>(data.size()),
                                Datatype::float64(), 1, 0);
        }
    });
    EXPECT_EQ(send_st.code(), Errc::peer_unreachable) << send_st.to_string();
    EXPECT_NE(send_st.detail().find("declared dead"), std::string::npos)
        << send_st.to_string();
    ASSERT_NE(c.monitor(), nullptr);
    EXPECT_EQ(c.monitor()->state(0, 1), fault::PeerState::dead);
    EXPECT_GE(c.monitor()->counters().peers_dead, 1u);
    EXPECT_GT(c.monitor()->counters().probe_failures, 0u);
    EXPECT_LT(c.wtime(), 0.05);
}

/// Pins the probe_peer observability added with the subsystem: both the
/// per-adapter stats and the cluster registry count every probe, and a
/// probe across a down route fails without wedging the prober.
TEST(Resilience, ProbeMetricsPinned) {
    ClusterOptions opt;
    opt.nodes = 4;
    opt.collect_stats = true;
    Cluster c(opt);
    c.engine().spawn("prober", [&](sim::Process& p) {
        EXPECT_TRUE(c.adapter(0).probe_peer(p, 1));
        c.fabric().set_link_up(0, false);
        EXPECT_FALSE(c.adapter(0).probe_peer(p, 1));
        c.fabric().set_link_up(0, true);
        EXPECT_TRUE(c.adapter(0).probe_peer(p, 1));
    });
    c.engine().run();
    EXPECT_EQ(c.adapter(0).stats().probes, 3u);
    EXPECT_EQ(c.adapter(0).stats().probe_failures, 1u);
    const auto report = c.stats_report();
    EXPECT_EQ(report.counter("sci.probes"), 3u);
    EXPECT_EQ(report.counter("sci.probe_failures"), 1u);
    EXPECT_EQ(report.counter("fabric.link_down_events"), 1u);
    EXPECT_EQ(report.counter("fabric.link_up_events"), 1u);
}

/// The acceptance bar from ISSUE 2: the same seed + soak spec must produce a
/// bit-identical stats report, fault pattern included.
TEST(Resilience, SameSeedAndSpecGiveBitIdenticalStatsReports) {
    auto run_once = [](std::uint64_t seed) {
        ClusterOptions opt;
        opt.nodes = 4;
        opt.collect_stats = true;
        opt.faults.set_seed(seed).soak(0, 5'000'000, 250'000, 0.2, 100'000);
        Cluster c(opt);
        c.run([](Comm& comm) {
            std::vector<double> mine(32_KiB / 8, 1.0 + comm.rank());
            std::vector<double> theirs(32_KiB / 8, 0.0);
            const int right = (comm.rank() + 1) % comm.size();
            const int left = (comm.rank() + comm.size() - 1) % comm.size();
            for (int iter = 0; iter < 2; ++iter)
                ASSERT_TRUE(
                    comm.sendrecv(mine.data(), static_cast<int>(mine.size()),
                                  Datatype::float64(), right, 0, theirs.data(),
                                  static_cast<int>(theirs.size()),
                                  Datatype::float64(), left, 0));
        });
        return c.stats_report();
    };
    auto a = run_once(42);
    auto b = run_once(42);
    EXPECT_GT(a.counter("fault.injected"), 0u);
    // RunReport v4 carries host wall-clock scalars that legitimately differ
    // run to run; the bit-identity invariant is about the *simulated*
    // results, so neutralize them before comparing (bench_compare.py skips
    // wall metrics for the same reason).
    const auto strip_wall = [](auto& r) {
        r.wall_ns = 0;
        r.events_per_sec_wall = 0.0;
        r.wall_per_sim_second = 0.0;
    };
    strip_wall(a);
    strip_wall(b);
    EXPECT_EQ(a.to_json(), b.to_json());
    // A different seed moves the fault pattern (pinning that the soak RNG is
    // actually driven by the schedule seed, not a global source).
    auto d = run_once(43);
    strip_wall(d);
    EXPECT_NE(a.to_json(), d.to_json());
}

}  // namespace
}  // namespace scimpi::mpi
