// FaultSchedule unit tests: builders, the text spec parser, time suffixes,
// and the determinism contract of materialize() (same spec + seed -> same
// event sequence, bit for bit).
#include <gtest/gtest.h>

#include <algorithm>

#include "fault/schedule.hpp"

namespace scimpi::fault {
namespace {

TEST(FaultSchedule, BuildersMaterializeSortedByTime) {
    FaultSchedule s;
    s.flap(500, 2, 100)              // down @500, up @600
        .link_down(100, 0)
        .error_window(50, 900, 1, 0.25)
        .adapter_stall(700, 3, 40)
        .drop_interrupts(10, 1, 2)
        .link_up(1000, 0);
    const auto ev = s.materialize(4);
    ASSERT_EQ(ev.size(), 8u);
    EXPECT_TRUE(std::is_sorted(ev.begin(), ev.end(),
                               [](const FaultEvent& a, const FaultEvent& b) {
                                   return a.t < b.t;
                               }));
    EXPECT_EQ(ev.front().kind, FaultKind::irq_drop);
    EXPECT_EQ(ev.front().count, 2);
    EXPECT_EQ(ev[1].kind, FaultKind::error_window_begin);
    EXPECT_DOUBLE_EQ(ev[1].rate, 0.25);
    EXPECT_EQ(ev.back().kind, FaultKind::link_up);
    EXPECT_EQ(ev.back().target, 0);
    const auto stall = std::find_if(ev.begin(), ev.end(), [](const FaultEvent& e) {
        return e.kind == FaultKind::adapter_stall;
    });
    ASSERT_NE(stall, ev.end());
    EXPECT_EQ(stall->target, 3);
    EXPECT_EQ(stall->duration, 40);
}

TEST(FaultSchedule, ParseMatchesEquivalentProgrammaticSchedule) {
    const auto parsed = FaultSchedule::parse(
        "# a comment line\n"
        "seed 7\n"
        "down 100us 0\n"
        "up   300us 0   # trailing comment\n"
        "flap 1ms 3 200us\n"
        "error 0 500us 2 0.2\n"
        "stall 50us 1 100us\n"
        "drop-irq 10us 2 3\n");
    ASSERT_TRUE(parsed.is_ok()) << parsed.status().to_string();

    FaultSchedule built;
    built.set_seed(7)
        .link_down(100'000, 0)
        .link_up(300'000, 0)
        .flap(1'000'000, 3, 200'000)
        .error_window(0, 500'000, 2, 0.2)
        .adapter_stall(50'000, 1, 100'000)
        .drop_interrupts(10'000, 2, 3);

    const auto a = parsed.value().materialize(8);
    const auto b = built.materialize(8);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].t, b[i].t) << i;
        EXPECT_EQ(a[i].kind, b[i].kind) << i;
        EXPECT_EQ(a[i].target, b[i].target) << i;
        EXPECT_DOUBLE_EQ(a[i].rate, b[i].rate) << i;
        EXPECT_EQ(a[i].duration, b[i].duration) << i;
        EXPECT_EQ(a[i].count, b[i].count) << i;
    }
}

TEST(FaultSchedule, TimeSuffixes) {
    const auto r = FaultSchedule::parse(
        "down 5 0\n"
        "down 5ns 1\n"
        "down 5us 2\n"
        "down 5ms 3\n"
        "down 5s 4\n");
    ASSERT_TRUE(r.is_ok());
    const auto& ev = r.value().explicit_events();
    ASSERT_EQ(ev.size(), 5u);
    EXPECT_EQ(ev[0].t, 5);
    EXPECT_EQ(ev[1].t, 5);
    EXPECT_EQ(ev[2].t, 5'000);
    EXPECT_EQ(ev[3].t, 5'000'000);
    EXPECT_EQ(ev[4].t, 5'000'000'000);
}

TEST(FaultSchedule, ParseErrorsNameTheLine) {
    auto expect_bad = [](std::string_view text, const char* line_tag) {
        const auto r = FaultSchedule::parse(text);
        ASSERT_FALSE(r.is_ok()) << text;
        EXPECT_EQ(r.status().code(), Errc::invalid_argument);
        EXPECT_NE(r.status().detail().find(line_tag), std::string::npos)
            << r.status().to_string();
    };
    expect_bad("explode 1us 0\n", "line 1");                  // unknown directive
    expect_bad("down 1us 0\nerror 0 1us 0 1.5\n", "line 2");  // rate out of range
    expect_bad("flap 1us 0\n", "line 1");                     // missing duration
    expect_bad("down 1xx 0\n", "line 1");                     // bad time suffix
    expect_bad("down 1us 0 extra\n", "trailing junk");
    expect_bad("seed banana\n", "seed needs an integer");
}

TEST(FaultSchedule, SoakIsDeterministicPerSeed) {
    auto events_for = [](std::uint64_t seed) {
        FaultSchedule s;
        s.set_seed(seed).soak(0, 10'000'000, 500'000, 0.3, 200'000);
        return s.materialize(6);
    };
    const auto a = events_for(42);
    const auto b = events_for(42);
    const auto c = events_for(43);
    ASSERT_FALSE(a.empty());  // p=0.3 over 20 slots x 6 links: ~36 flaps
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].t, b[i].t);
        EXPECT_EQ(a[i].kind, b[i].kind);
        EXPECT_EQ(a[i].target, b[i].target);
    }
    // A different seed moves the flap pattern.
    bool differs = a.size() != c.size();
    for (std::size_t i = 0; !differs && i < a.size(); ++i)
        differs = a[i].t != c[i].t || a[i].target != c[i].target;
    EXPECT_TRUE(differs);
}

TEST(FaultSchedule, MergeAppendsAndTakesOtherSeed) {
    FaultSchedule base;
    base.set_seed(11).link_down(100, 0);
    FaultSchedule extra;
    extra.set_seed(99).link_up(200, 0);
    base.merge(extra);
    EXPECT_EQ(base.seed(), 99u);
    EXPECT_EQ(base.explicit_events().size(), 2u);
}

TEST(FaultSchedule, LoadMissingFileIsIoError) {
    const auto r = FaultSchedule::load("/nonexistent/fault.spec");
    ASSERT_FALSE(r.is_ok());
    EXPECT_EQ(r.status().code(), Errc::io_error);
}

}  // namespace
}  // namespace scimpi::fault
