# Causal-analysis smoke test: run the quickstart example under SCIMPI_CHECK=1
# with an event log (SCIMPI_EVLOG) plus a stats file, then check
#   (a) scimpi-analyze reads the log: a non-empty critical-path breakdown,
#       blamed ranks and the per-rank-pair communication matrix are printed,
#   (b) --json output is well-formed JSON (json_check),
#   (c) --diff of the log against itself reports a zero end-to-end delta,
#   (d) the RunReport (schema v5) carries the critical_path section, so the
#       offline tool and the in-run report stay wired to the same walk.
#
# Expects: QUICKSTART, ANALYZE, JSON_CHECK, OUT_DIR.
set(evlog_file "${OUT_DIR}/smoke_analyze.evlog")
set(stats_file "${OUT_DIR}/smoke_analyze_stats.json")
set(human_out "${OUT_DIR}/smoke_analyze_human.txt")
set(json_out "${OUT_DIR}/smoke_analyze.json")
file(REMOVE "${evlog_file}" "${stats_file}" "${human_out}" "${json_out}")

execute_process(
  COMMAND ${CMAKE_COMMAND} -E env
          "SCIMPI_CHECK=1"
          "SCIMPI_EVLOG=${evlog_file}"
          "SCIMPI_STATS_FILE=${stats_file}"
          "${QUICKSTART}"
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "quickstart under SCIMPI_CHECK=1 + SCIMPI_EVLOG exited with ${rc}")
endif()
foreach(f IN ITEMS "${evlog_file}" "${stats_file}")
  if(NOT EXISTS "${f}")
    message(FATAL_ERROR "expected output file was not written: ${f}")
  endif()
endforeach()

# (a) Human-readable analysis over the log.
execute_process(COMMAND "${ANALYZE}" "${evlog_file}"
                OUTPUT_FILE "${human_out}" RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "scimpi-analyze exited with ${rc} on ${evlog_file}")
endif()
file(READ "${human_out}" human_text)
foreach(needle IN ITEMS "critical path" "top blamed ranks"
                        "communication matrix" "complete")
  string(FIND "${human_text}" "${needle}" pos)
  if(pos EQUAL -1)
    message(FATAL_ERROR "scimpi-analyze output lacks \"${needle}\":\n${human_text}")
  endif()
endforeach()
string(FIND "${human_text}" "TRUNCATED" pos)
if(NOT pos EQUAL -1)
  message(FATAL_ERROR "a clean run's log must not read as truncated")
endif()

# (b) Machine-readable output is valid JSON.
execute_process(COMMAND "${ANALYZE}" --json "${evlog_file}"
                OUTPUT_FILE "${json_out}" RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "scimpi-analyze --json exited with ${rc}")
endif()
execute_process(COMMAND "${JSON_CHECK}" "${json_out}" RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "scimpi-analyze --json output is not valid JSON")
endif()

# (c) A log diffed against itself is a null experiment.
execute_process(COMMAND "${ANALYZE}" --diff "${evlog_file}" "${evlog_file}"
                OUTPUT_VARIABLE diff_text RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "scimpi-analyze --diff exited with ${rc}")
endif()
string(FIND "${diff_text}" "end-to-end delta: +0 ns" pos)
if(pos EQUAL -1)
  message(FATAL_ERROR "self-diff did not report a zero delta:\n${diff_text}")
endif()

# (d) The in-run report carries the same walk (RunReport schema v5).
file(READ "${stats_file}" stats_text)
foreach(needle IN ITEMS "\"schema_version\": 6" "\"critical_path\"")
  string(FIND "${stats_text}" "${needle}" pos)
  if(pos EQUAL -1)
    message(FATAL_ERROR "stats report lacks ${needle}: ${stats_file}")
  endif()
endforeach()
