# Fault-injection smoke test: run the quickstart example under a fault
# schedule (link 0 flaps at t=0 for 200us — squarely under the first eager
# send) and assert from the emitted stats JSON that faults were injected AND
# that the protocol recovered transfers instead of failing them.
#
# Expects: QUICKSTART (example binary), JSON_CHECK (checker binary), OUT_DIR.
set(spec_file "${OUT_DIR}/smoke_faults.spec")
set(stats_file "${OUT_DIR}/smoke_faults_stats.json")
file(REMOVE "${stats_file}")

# The quickstart's first send leaves rank 0 at t=0; the 200us outage is
# outlasted by the sender's exponential backoff (20+40+80+160us).
file(WRITE "${spec_file}" "# smoke: flap the rank0->rank1 link under the first send\nflap 0 0 200us\n")

execute_process(
  COMMAND ${CMAKE_COMMAND} -E env
          "SCIMPI_STATS=1"
          "SCIMPI_STATS_FILE=${stats_file}"
          "${QUICKSTART}" --faults "${spec_file}"
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "quickstart --faults exited with ${rc}")
endif()

if(NOT EXISTS "${stats_file}")
  message(FATAL_ERROR "expected stats file was not written: ${stats_file}")
endif()
execute_process(COMMAND "${JSON_CHECK}" "${stats_file}" RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "not valid JSON: ${stats_file}")
endif()

file(READ "${stats_file}" stats)
if(NOT stats MATCHES "\"fault\\.injected\": [1-9]")
  message(FATAL_ERROR "stats report shows no injected faults:\n${stats}")
endif()
if(NOT stats MATCHES "\"mpi\\.send_recoveries\": [1-9]")
  message(FATAL_ERROR "stats report shows no recovered transfers:\n${stats}")
endif()
if(NOT stats MATCHES "\"mpi\\.send_giveups\": 0")
  message(FATAL_ERROR "a transfer gave up during the smoke flap:\n${stats}")
endif()
