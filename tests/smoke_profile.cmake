# Profiling smoke test: run the quickstart with stats, tracing AND the
# per-rank profiler enabled via environment variables, then assert the
# end-to-end observability invariants on the emitted files:
#   * both files are well-formed JSON (json_check),
#   * every flow start in the trace has a matching finish and the rank
#     tracks are named ("rank 0" ...) -- obs_check flows,
#   * every rank profile's state times sum to total_ns and total_ns equals
#     the run's sim_time_ns -- obs_check profile.
#
# Expects: QUICKSTART, JSON_CHECK, OBS_CHECK (binaries), OUT_DIR.
set(stats_file "${OUT_DIR}/smoke_profile_stats.json")
set(trace_file "${OUT_DIR}/smoke_profile.trace.json")
file(REMOVE "${stats_file}" "${trace_file}")

execute_process(
  COMMAND ${CMAKE_COMMAND} -E env
          "SCIMPI_STATS=1"
          "SCIMPI_PROFILE=1"
          "SCIMPI_STATS_FILE=${stats_file}"
          "SCIMPI_TRACE_FILE=${trace_file}"
          "${QUICKSTART}" --profile
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "quickstart exited with ${rc}")
endif()

foreach(f IN ITEMS "${stats_file}" "${trace_file}")
  if(NOT EXISTS "${f}")
    message(FATAL_ERROR "expected output file was not written: ${f}")
  endif()
  execute_process(COMMAND "${JSON_CHECK}" "${f}" RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "not valid JSON: ${f}")
  endif()
endforeach()

execute_process(COMMAND "${OBS_CHECK}" flows "${trace_file}" RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "flow events unbalanced or tracks unnamed: ${trace_file}")
endif()

execute_process(COMMAND "${OBS_CHECK}" profile "${stats_file}" RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "per-rank time attribution broken: ${stats_file}")
endif()
