# ThreadSanitizer gate over the engine and checker suites. The simulator is
# deterministic by construction, but it *is* built from real OS threads and
# a condvar baton — exactly the code TSan understands — so the sim/ and
# check/ suites (which exercise spawn/suspend/shutdown, the schedule
# controller hooks, and the explorer's repeated engine teardown) run under
# the existing `tsan` preset as part of verify. Configures and builds the
# preset's tree on demand so the gate works from a fresh checkout.
#
# Expects: SOURCE_DIR.
set(tsan_dir "${SOURCE_DIR}/build-tsan")

execute_process(
  COMMAND "${CMAKE_COMMAND}" -S "${SOURCE_DIR}" -B "${tsan_dir}"
          -DCMAKE_BUILD_TYPE=RelWithDebInfo -DSCIMPI_SANITIZE_THREAD=ON
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "tsan configure failed:\n${out}${err}")
endif()

execute_process(
  COMMAND "${CMAKE_COMMAND}" --build "${tsan_dir}" --target test_sim test_check
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "tsan build failed:\n${out}${err}")
endif()

foreach(suite IN ITEMS test_sim test_check)
  execute_process(COMMAND "${tsan_dir}/tests/${suite}" RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "${suite} failed under ThreadSanitizer (rc=${rc})")
  endif()
endforeach()
