# scimpi-check smoke test: the deliberately racy example must report the
# race (in its stderr table and in the stats JSON violations array), the
# --clean variant and the quickstart tour under --check must report nothing.
#
# Expects: RACE_DEMO and QUICKSTART (example binaries), OUT_DIR.
set(stats_file "${OUT_DIR}/smoke_check_stats.json")
file(REMOVE "${stats_file}")

# 1. Racy mode: the example self-verifies (exit 0 iff >= 1 violation) and
#    the run report must carry the violation with its kind.
execute_process(
  COMMAND ${CMAKE_COMMAND} -E env
          "SCIMPI_STATS=1"
          "SCIMPI_STATS_FILE=${stats_file}"
          "${RACE_DEMO}"
  RESULT_VARIABLE rc
  ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "race_demo (racy) exited with ${rc}:\n${err}")
endif()
if(NOT err MATCHES "put_put_overlap")
  message(FATAL_ERROR "race_demo stderr has no put_put_overlap report:\n${err}")
endif()
if(NOT EXISTS "${stats_file}")
  message(FATAL_ERROR "expected stats file was not written: ${stats_file}")
endif()
file(READ "${stats_file}" stats)
if(NOT stats MATCHES "\"check_enabled\": true")
  message(FATAL_ERROR "stats report does not show checking enabled:\n${stats}")
endif()
if(NOT stats MATCHES "\"kind\": \"put_put_overlap\"")
  message(FATAL_ERROR "stats report carries no put_put_overlap violation:\n${stats}")
endif()

# 2. Clean mode: disjoint byte ranges, zero violations expected (the example
#    exits non-zero if any are reported).
execute_process(COMMAND "${RACE_DEMO}" --clean RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "race_demo --clean exited with ${rc}")
endif()

# 3. The quickstart tour is correct MPI-2: under --check it must stay quiet.
execute_process(
  COMMAND "${QUICKSTART}" --check
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "quickstart --check exited with ${rc}")
endif()
if(NOT out MATCHES "scimpi-check: 0 violation")
  message(FATAL_ERROR "quickstart --check did not report zero violations:\n${out}")
endif()
