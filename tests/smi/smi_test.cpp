#include <gtest/gtest.h>

#include <cstring>

#include "../sci/sci_fixture.hpp"
#include "check/checker.hpp"
#include "smi/barrier.hpp"
#include "smi/lock.hpp"
#include "smi/region.hpp"
#include "smi/signal.hpp"

namespace scimpi::smi {
namespace {

using sci::testing::MiniCluster;

TEST(Region, LocalRegionRoundTripImmediatelyVisible) {
    sim::Engine eng;
    std::vector<std::byte> backing(4_KiB);
    auto r = Region::local({backing.data(), backing.size()}, mem::pentium3_800());
    EXPECT_FALSE(r.remote());
    eng.spawn("p", [&](sim::Process& p) {
        const char msg[] = "hello smi";
        ASSERT_TRUE(r.write(p, 64, msg, sizeof(msg)));
        char out[sizeof(msg)] = {};
        ASSERT_TRUE(r.read(p, 64, out, sizeof(msg)));
        EXPECT_STREQ(out, msg);
        r.store_barrier(p);  // cheap for local
        EXPECT_LT(to_us(p.now()), 3.0);
    });
    eng.run();
}

TEST(Region, SciRegionRequiresBarrierForVisibility) {
    MiniCluster c(2);
    const auto seg = c.export_segment(1, 4_KiB);
    c.engine.spawn("p", [&](sim::Process& p) {
        auto r = Region::sci(c.import(0, seg), *c.adapters[0]);
        EXPECT_TRUE(r.remote());
        const std::uint64_t v = 0xdeadbeef;
        ASSERT_TRUE(r.write(p, 0, &v, 8));
        std::uint64_t direct = 0;
        std::memcpy(&direct, r.mem().data(), 8);
        EXPECT_EQ(direct, 0u);  // still in flight
        r.store_barrier(p);
        std::memcpy(&direct, r.mem().data(), 8);
        EXPECT_EQ(direct, v);
    });
    c.engine.run();
}

TEST(Region, LoopbackSciMappingActsLocal) {
    MiniCluster c(2);
    const auto seg = c.export_segment(0, 4_KiB);
    c.engine.spawn("p", [&](sim::Process& p) {
        auto r = Region::sci(c.import(0, seg), *c.adapters[0]);
        EXPECT_FALSE(r.remote());
        const int v = 7;
        ASSERT_TRUE(r.write(p, 0, &v, sizeof v));
        int out = 0;
        std::memcpy(&out, r.mem().data(), sizeof v);
        EXPECT_EQ(out, 7);  // immediate
    });
    c.engine.run();
}

TEST(Region, LoopbackRegionAccessesReachTheChecker) {
    // Loopback mappings take the local branch that never reaches the
    // adapter; Region::sci inherits the adapter's checker so watched
    // segments stay observed on that path too.
    MiniCluster c(2);
    check::Checker ck(2);
    ck.enable();
    c.adapters[0]->bind_checker(&ck);
    const auto seg = c.export_segment(0, 4_KiB);
    ck.watch_segment(seg.node, seg.id);
    c.engine.spawn("a", [&](sim::Process& p) {
        ck.register_actor(p.id(), 0);
        auto r = Region::sci(c.import(0, seg), *c.adapters[0]);
        EXPECT_FALSE(r.remote());
        const std::uint64_t v = 1;
        ASSERT_TRUE(r.write(p, 0, &v, sizeof v));
    });
    c.engine.spawn("b", [&](sim::Process& p) {
        ck.register_actor(p.id(), 1);
        auto r = Region::sci(c.import(0, seg), *c.adapters[0]);
        const std::uint64_t v = 2;
        ASSERT_TRUE(r.write(p, 4, &v, sizeof v));
    });
    c.engine.run();
    ASSERT_EQ(ck.count(check::ViolationKind::segment_race), 1u);
    EXPECT_EQ(ck.violations().front().range.lo, 4u);
    EXPECT_EQ(ck.violations().front().range.hi, 8u);
}

TEST(Region, OutOfBoundsLocalWritePanics) {
    sim::Engine eng;
    std::vector<std::byte> backing(64);
    auto r = Region::local({backing.data(), backing.size()}, mem::pentium3_800());
    eng.spawn("p", [&](sim::Process& p) {
        const int v = 1;
        EXPECT_THROW((void)r.write(p, 62, &v, sizeof v), Panic);
    });
    eng.run();
}

TEST(SmiLock, MutualExclusionAcrossNodes) {
    MiniCluster c(4);
    SmiLock lock(0, c.fabric.params());
    int in_critical = 0;
    int max_in_critical = 0;
    for (int r = 0; r < 4; ++r)
        c.engine.spawn("rank" + std::to_string(r), [&, r](sim::Process& p) {
            for (int iter = 0; iter < 10; ++iter) {
                lock.acquire(p, r);
                max_in_critical = std::max(max_in_critical, ++in_critical);
                p.delay(500);
                --in_critical;
                lock.release(p, r);
            }
        });
    c.engine.run();
    EXPECT_EQ(max_in_critical, 1);
    EXPECT_EQ(lock.acquisitions(), 40u);
    EXPECT_GT(lock.contentions(), 0u);
}

TEST(SmiLock, UncontendedRemoteAcquireIsMicroseconds) {
    MiniCluster c(2);
    SmiLock lock(0, c.fabric.params());
    c.engine.spawn("p", [&](sim::Process& p) {
        const SimTime t0 = p.now();
        lock.acquire(p, 1);
        const double us = to_us(p.now() - t0);
        EXPECT_GT(us, 1.0);
        EXPECT_LT(us, 10.0);  // paper: "very low latency for little contention"
        lock.release(p, 1);
    });
    c.engine.run();
}

TEST(SmiBarrier, SynchronizesRanksOnDistinctNodes) {
    MiniCluster c(4);
    SmiBarrier bar(0, {0, 1, 2, 3}, c.fabric.params());
    std::vector<SimTime> release(4);
    for (int r = 0; r < 4; ++r)
        c.engine.spawn("rank" + std::to_string(r), [&, r](sim::Process& p) {
            p.delay((r + 1) * 10'000);
            bar.arrive_and_wait(p, r);
            release[static_cast<std::size_t>(r)] = p.now();
        });
    c.engine.run();
    // Nobody passes before the last arrival at 40 us.
    for (const SimTime t : release) EXPECT_GE(t, 40'000);
    // And everyone passes within a few microseconds of each other.
    const auto [lo, hi] = std::minmax_element(release.begin(), release.end());
    EXPECT_LT(*hi - *lo, 10'000);
}

TEST(SignalChannel, DeliversAfterInterruptLatency) {
    MiniCluster c(2);
    SignalChannel ch(c.dispatcher, c.fabric.params(), 1);
    SimTime posted = 0, received = 0;
    c.engine.spawn("handler", [&](sim::Process& p) {
        const Signal s = ch.wait(p);
        received = p.now();
        EXPECT_EQ(s.kind, 3);
        EXPECT_EQ(s.a, 42u);
        EXPECT_EQ(s.from_rank, 0);
    });
    c.engine.spawn("origin", [&](sim::Process& p) {
        p.delay(1000);
        Signal s;
        s.from_rank = 0;
        s.kind = 3;
        s.a = 42;
        ch.post(p, 0, std::move(s));
        posted = p.now();
    });
    c.engine.run();
    EXPECT_GE(received - posted, c.fabric.params().irq_latency);
}

TEST(SignalChannel, PayloadSurvivesDelivery) {
    MiniCluster c(2);
    SignalChannel ch(c.dispatcher, c.fabric.params(), 1);
    c.engine.spawn("handler", [&](sim::Process& p) {
        const Signal s = ch.wait(p);
        ASSERT_EQ(s.payload.size(), 3u);
        EXPECT_EQ(s.payload[0], std::byte{1});
        EXPECT_EQ(s.payload[2], std::byte{3});
    });
    c.engine.spawn("origin", [&](sim::Process& p) {
        Signal s;
        s.payload = {std::byte{1}, std::byte{2}, std::byte{3}};
        ch.post(p, 0, std::move(s));
        p.delay(1);
    });
    c.engine.run();
}

TEST(SignalChannel, ManySignalsDeliveredInOrder) {
    MiniCluster c(2);
    SignalChannel ch(c.dispatcher, c.fabric.params(), 1);
    std::vector<std::uint64_t> got;
    c.engine.spawn("handler", [&](sim::Process& p) {
        for (int i = 0; i < 16; ++i) got.push_back(ch.wait(p).a);
    });
    c.engine.spawn("origin", [&](sim::Process& p) {
        for (std::uint64_t i = 0; i < 16; ++i) {
            Signal s;
            s.a = i;
            ch.post(p, 0, std::move(s));
            p.delay(100);
        }
    });
    c.engine.run();
    for (std::uint64_t i = 0; i < 16; ++i) EXPECT_EQ(got[i], i);
}

}  // namespace
}  // namespace scimpi::smi
