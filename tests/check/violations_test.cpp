// Pinned tests for scimpi-check (DESIGN.md §10): one test per violation
// class asserting the exact kind and byte range reported, plus vector-clock
// unit tests and a clean-program zero-violation check. E2e tests drive real
// clusters with opt.check on; unit tests drive the Checker hooks directly
// where the library would refuse to execute the broken call sequence.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "check/checker.hpp"
#include "check/clock.hpp"
#include "mpi/comm.hpp"
#include "mpi/rma/window.hpp"

namespace scimpi::mpi {
namespace {

using check::AccessKind;
using check::ByteRange;
using check::Checker;
using check::SyncMode;
using check::VectorClock;
using check::ViolationKind;

ClusterOptions checked(int n) {
    ClusterOptions opt;
    opt.nodes = n;
    opt.check = true;
    return opt;
}

std::shared_ptr<Win> shared_window(Comm& comm, std::size_t bytes) {
    auto mem = comm.alloc_mem(bytes);
    SCIMPI_REQUIRE(mem.is_ok(), "alloc_mem failed");
    std::memset(mem.value().data(), 0, bytes);
    return comm.win_create(mem.value().data(), bytes);
}

// ---------------------------------------------------------------------------
// Vector clocks
// ---------------------------------------------------------------------------

TEST(VectorClockTest, TickAndJoin) {
    VectorClock a(3);
    VectorClock b(3);
    a.tick(0);
    a.tick(0);
    b.tick(1);
    EXPECT_EQ(a.at(0), 2u);
    EXPECT_EQ(a.at(1), 0u);
    b.join(a);
    EXPECT_EQ(b.at(0), 2u);
    EXPECT_EQ(b.at(1), 1u);
}

TEST(VectorClockTest, DominatedAndConcurrent) {
    VectorClock a(2);
    VectorClock b(2);
    a.tick(0);            // a=[1,0], b=[0,0]
    EXPECT_TRUE(VectorClock::dominated(b, a));
    EXPECT_FALSE(VectorClock::dominated(a, b));
    EXPECT_FALSE(VectorClock::concurrent(a, b));
    b.tick(1);            // a=[1,0], b=[0,1]: causally unrelated
    EXPECT_TRUE(VectorClock::concurrent(a, b));
    b.join(a);            // b=[1,1] now dominates a
    EXPECT_FALSE(VectorClock::concurrent(a, b));
    EXPECT_TRUE(VectorClock::dominated(a, b));
}

// ---------------------------------------------------------------------------
// End-to-end: real clusters, opt.check = true
// ---------------------------------------------------------------------------

TEST(CheckViolations, PutPutOverlapExactByteRange) {
    Cluster c(checked(3));
    c.run([](Comm& comm) {
        auto win = shared_window(comm, 4_KiB);
        const double v = 1.5;
        win->fence();
        // Rank 1 writes [0,8), rank 2 writes [4,12): the clash is [4,8).
        if (comm.rank() == 1) {
            ASSERT_TRUE(win->put(&v, 1, Datatype::float64(), 0, 0));
        } else if (comm.rank() == 2) {
            ASSERT_TRUE(win->put(&v, 1, Datatype::float64(), 0, 4));
        }
        win->fence();
        win->fence();
    });
    ASSERT_EQ(c.checker()->count(ViolationKind::put_put_overlap), 1u);
    const auto& v = c.checker()->violations().front();
    EXPECT_EQ(v.kind, ViolationKind::put_put_overlap);
    EXPECT_EQ(v.range.lo, 4u);
    EXPECT_EQ(v.range.hi, 8u);
}

TEST(CheckViolations, PutGetOverlapSameEpoch) {
    Cluster c(checked(3));
    c.run([](Comm& comm) {
        auto win = shared_window(comm, 4_KiB);
        const double v = 2.5;
        double sink = 0.0;
        win->fence();
        if (comm.rank() == 1) {
            ASSERT_TRUE(win->put(&v, 1, Datatype::float64(), 0, 0));
        } else if (comm.rank() == 2) {
            ASSERT_TRUE(win->get(&sink, 1, Datatype::float64(), 0, 0));
        }
        win->fence();
        win->fence();
    });
    ASSERT_EQ(c.checker()->count(ViolationKind::put_get_overlap), 1u);
    const auto& v = c.checker()->violations().front();
    EXPECT_EQ(v.range.lo, 0u);
    EXPECT_EQ(v.range.hi, 8u);
}

TEST(CheckViolations, AccumulatePutOverlap) {
    Cluster c(checked(3));
    c.run([](Comm& comm) {
        auto win = shared_window(comm, 4_KiB);
        const double v = 3.5;
        win->fence();
        if (comm.rank() == 1) {
            ASSERT_TRUE(win->accumulate_sum(&v, 1, 0, 0));
        } else if (comm.rank() == 2) {
            ASSERT_TRUE(win->put(&v, 1, Datatype::float64(), 0, 0));
        }
        win->fence();
        win->fence();
    });
    EXPECT_EQ(c.checker()->count(ViolationKind::acc_put_overlap), 1u);
    EXPECT_EQ(c.checker()->count(ViolationKind::put_put_overlap), 0u);
}

TEST(CheckViolations, AccumulateAccumulateIsAllowed) {
    Cluster c(checked(3));
    c.run([](Comm& comm) {
        auto win = shared_window(comm, 4_KiB);
        const double v = 1.0;
        win->fence();
        // Same-op accumulates to the same location may interleave (MPI-2).
        if (comm.rank() != 0) {
            ASSERT_TRUE(win->accumulate_sum(&v, 1, 0, 0));
        }
        win->fence();
        win->fence();
    });
    EXPECT_TRUE(c.checker()->violations().empty());
}

TEST(CheckViolations, LocalStoreDuringExposureEpoch) {
    Cluster c(checked(2));
    c.run([](Comm& comm) {
        auto win = shared_window(comm, 4_KiB);
        if (comm.rank() == 0) {
            const int origins[] = {1};
            win->post(origins);
            // The target touching its own exposed window portion between
            // post and wait is forbidden — even with no remote overlap.
            const double v = 9.0;
            ASSERT_TRUE(win->put(&v, 1, Datatype::float64(), 0, 16));
            win->wait();
        } else {
            const int targets[] = {0};
            win->start(targets);
            win->complete();
        }
    });
    ASSERT_EQ(c.checker()->count(ViolationKind::local_access_during_exposure), 1u);
    const auto& v = c.checker()->violations().front();
    EXPECT_EQ(v.range.lo, 16u);
    EXPECT_EQ(v.range.hi, 24u);
}

TEST(CheckViolations, OpOutsideAnyEpoch) {
    Cluster c(checked(2));
    c.run([](Comm& comm) {
        auto win = shared_window(comm, 4_KiB);
        if (comm.rank() == 0) {
            // No fence, start or lock: the put must fail *and* be flagged.
            const double v = 4.0;
            const Status st = win->put(&v, 1, Datatype::float64(), 1, 0);
            EXPECT_FALSE(st.is_ok());
        }
        comm.barrier();
    });
    ASSERT_EQ(c.checker()->count(ViolationKind::op_outside_epoch), 1u);
    EXPECT_EQ(c.checker()->violations().front().range.lo, 0u);
    EXPECT_EQ(c.checker()->violations().front().range.hi, 8u);
}

TEST(CheckViolations, OutOfBoundsDisplacement) {
    Cluster c(checked(2));
    c.run([](Comm& comm) {
        auto win = shared_window(comm, 4_KiB);
        win->fence();
        if (comm.rank() == 0) {
            const double v = 5.0;
            // 4 KiB window: [5000, 5008) is past the end.
            const Status st = win->put(&v, 1, Datatype::float64(), 1, 5000);
            EXPECT_FALSE(st.is_ok());
        }
        win->fence();
    });
    ASSERT_EQ(c.checker()->count(ViolationKind::oob_displacement), 1u);
    const auto& v = c.checker()->violations().front();
    EXPECT_EQ(v.range.lo, 5000u);
    EXPECT_EQ(v.range.hi, 5008u);
}

TEST(CheckViolations, CleanPscwRoundReportsNothing) {
    Cluster c(checked(2));
    c.run([](Comm& comm) {
        auto win = shared_window(comm, 4_KiB);
        if (comm.rank() == 0) {
            const int origins[] = {1};
            win->post(origins);
            win->wait();
        } else {
            const int targets[] = {0};
            win->start(targets);
            const double v = 6.0;
            ASSERT_TRUE(win->put(&v, 1, Datatype::float64(), 0, 0));
            win->complete();
        }
    });
    EXPECT_TRUE(c.checker()->violations().empty());
}

TEST(CheckViolations, CleanFenceProgramReportsNothing) {
    Cluster c(checked(3));
    c.run([](Comm& comm) {
        auto win = shared_window(comm, 4_KiB);
        const double v = 7.0;
        win->fence();
        // Disjoint 8-byte slots per origin: no overlap, no report.
        if (comm.rank() != 0) {
            ASSERT_TRUE(win->put(&v, 1, Datatype::float64(), 0,
                                 8 * static_cast<std::size_t>(comm.rank())));
        }
        win->fence();
        win->fence();
    });
    EXPECT_TRUE(c.checker()->violations().empty());
    EXPECT_EQ(c.checker()->suppressed(), 0u);
}

TEST(CheckViolations, MessageOrderedPutsInOneFenceEpochStillFlagged) {
    // MPI-2: even if rank 1's put is message-ordered before rank 2's, both
    // complete only at the closing fence — same-epoch conflicts stay real.
    Cluster c(checked(3));
    c.run([](Comm& comm) {
        auto win = shared_window(comm, 4_KiB);
        const double v = 8.0;
        int token = 0;
        win->fence();
        if (comm.rank() == 1) {
            ASSERT_TRUE(win->put(&v, 1, Datatype::float64(), 0, 0));
            ASSERT_TRUE(comm.send(&token, 1, Datatype::int32(), 2, 0));
        } else if (comm.rank() == 2) {
            comm.recv(&token, 1, Datatype::int32(), 1, 0);
            ASSERT_TRUE(win->put(&v, 1, Datatype::float64(), 0, 0));
        }
        win->fence();
        win->fence();
    });
    EXPECT_EQ(c.checker()->count(ViolationKind::put_put_overlap), 1u);
}

TEST(CheckViolations, LockSerializedPutsAreOrdered) {
    // Passive target: the lock hand-over clock orders the two sessions, so
    // overlapping puts by different origins are legal (no fence epoch is
    // ever open — both ops carry fence count 0, which must prove nothing).
    Cluster c(checked(3));
    c.run([](Comm& comm) {
        auto win = shared_window(comm, 4_KiB);
        const double v = 1.0;
        if (comm.rank() != 0) {
            win->lock(0);
            ASSERT_TRUE(win->put(&v, 1, Datatype::float64(), 0, 0));
            win->unlock(0);
        }
        comm.barrier();  // keep rank 0's window alive until both sessions end
    });
    EXPECT_TRUE(c.checker()->violations().empty());
}

TEST(CheckViolations, SequentialPscwEpochsDifferentOriginsAreOrdered) {
    // Two exposure epochs back to back: origin 2's start joins the post
    // clock of the second post, which dominates origin 1's complete — the
    // overlapping puts are ordered, not racing.
    Cluster c(checked(3));
    c.run([](Comm& comm) {
        auto win = shared_window(comm, 4_KiB);
        const double v = 1.0;
        if (comm.rank() == 0) {
            const int first[] = {1};
            win->post(first);
            win->wait();
            const int second[] = {2};
            win->post(second);
            win->wait();
        } else {
            const int targets[] = {0};
            win->start(targets);
            ASSERT_TRUE(win->put(&v, 1, Datatype::float64(), 0, 0));
            win->complete();
        }
    });
    EXPECT_TRUE(c.checker()->violations().empty());
}

TEST(CheckViolations, ConcurrentPscwOriginsInOneEpochStillFlagged) {
    // Both origins access inside the *same* exposure epoch with no ordering
    // between them: their clocks are concurrent and the overlap is real.
    Cluster c(checked(3));
    c.run([](Comm& comm) {
        auto win = shared_window(comm, 4_KiB);
        const double v = 1.0;
        if (comm.rank() == 0) {
            const int origins[] = {1, 2};
            win->post(origins);
            win->wait();
        } else {
            const int targets[] = {0};
            win->start(targets);
            ASSERT_TRUE(win->put(&v, 1, Datatype::float64(), 0, 0));
            win->complete();
        }
    });
    EXPECT_EQ(c.checker()->count(ViolationKind::put_put_overlap), 1u);
}

// ---------------------------------------------------------------------------
// Unit-level: hook sequences the library itself would refuse to execute
// ---------------------------------------------------------------------------

TEST(CheckerUnit, PscwMismatchWaitWithoutPost) {
    Checker ck(2);
    ck.enable();
    ck.on_wait(/*win=*/0, /*target=*/0, /*now=*/10, /*track=*/0);
    ASSERT_EQ(ck.count(ViolationKind::pscw_mismatch), 1u);
    EXPECT_EQ(ck.violations().front().rank_b, 0);
}

TEST(CheckerUnit, PscwMismatchCompleteWithoutStart) {
    Checker ck(2);
    ck.enable();
    ck.on_complete(/*win=*/0, /*origin=*/1, /*now=*/10, /*track=*/0);
    EXPECT_EQ(ck.count(ViolationKind::pscw_mismatch), 1u);
}

TEST(CheckerUnit, PscwMismatchDoublePost) {
    Checker ck(2);
    ck.enable();
    ck.on_post(0, /*target=*/0, {1}, 10, 0);
    ck.on_post(0, /*target=*/0, {1}, 20, 0);
    EXPECT_EQ(ck.count(ViolationKind::pscw_mismatch), 1u);
}

TEST(CheckerUnit, SegmentRaceOnWatchedSegment) {
    Checker ck(2);
    ck.enable();
    ck.register_actor(/*track=*/100, /*world_rank=*/0);
    ck.register_actor(/*track=*/101, /*world_rank=*/1);
    ck.watch_segment(/*node=*/3, /*id=*/7);
    ck.on_segment_access(3, 7, 100, /*off=*/0, /*len=*/64, /*store=*/true, 10);
    ck.on_segment_access(3, 7, 101, /*off=*/32, /*len=*/64, /*store=*/true, 20);
    ASSERT_EQ(ck.count(ViolationKind::segment_race), 1u);
    const auto& v = ck.violations().front();
    EXPECT_EQ(v.range.lo, 32u);
    EXPECT_EQ(v.range.hi, 64u);
}

TEST(CheckerUnit, UnwatchedSegmentIsIgnored) {
    Checker ck(2);
    ck.enable();
    ck.register_actor(100, 0);
    ck.register_actor(101, 1);
    // No watch_segment: protocol-internal traffic must never be flagged.
    ck.on_segment_access(3, 7, 100, 0, 64, true, 10);
    ck.on_segment_access(3, 7, 101, 0, 64, true, 20);
    EXPECT_TRUE(ck.violations().empty());
}

TEST(CheckerUnit, SegmentLoadsNeverRace) {
    Checker ck(2);
    ck.enable();
    ck.register_actor(100, 0);
    ck.register_actor(101, 1);
    ck.watch_segment(0, 1);
    ck.on_segment_access(0, 1, 100, 0, 64, /*store=*/false, 10);
    ck.on_segment_access(0, 1, 101, 0, 64, /*store=*/false, 20);
    EXPECT_TRUE(ck.violations().empty());
}

TEST(CheckerUnit, HappensBeforeEdgeSuppressesSegmentRace) {
    Checker ck(2);
    ck.enable();
    ck.register_actor(100, 0);
    ck.register_actor(101, 1);
    ck.watch_segment(0, 1);
    ck.on_segment_access(0, 1, 100, 0, 64, true, 10);
    ck.on_p2p(/*src=*/0, /*dst=*/1);  // rank 0 handed rank 1 the baton
    ck.on_segment_access(0, 1, 101, 0, 64, true, 20);
    EXPECT_TRUE(ck.violations().empty());
}

TEST(CheckerUnit, BufferReuseAfterIsendIsARequestRace) {
    Checker ck(2);
    ck.enable();
    ck.register_actor(/*track=*/100, /*world_rank=*/0);
    ck.register_actor(/*track=*/101, /*world_rank=*/1);
    ck.watch_segment(/*node=*/3, /*id=*/7);
    // Rank 0 isends [0,64) of the watched segment, then stores into [32,96)
    // before completing the request: the classic racy buffer reuse.
    const std::uint64_t id =
        ck.on_request_issue(0, 3, 7, /*off=*/0, /*len=*/64, /*is_send=*/true, 10);
    ASSERT_NE(id, 0u);
    ck.on_segment_access(3, 7, 100, /*off=*/32, /*len=*/64, /*store=*/true, 20);
    ASSERT_EQ(ck.count(ViolationKind::request_race), 1u);
    const auto& v = ck.violations().front();
    EXPECT_EQ(v.range.lo, 32u);
    EXPECT_EQ(v.range.hi, 64u);  // the intersection with the pending send
}

TEST(CheckerUnit, LoadFromPendingIrecvBufferIsARequestRace) {
    Checker ck(2);
    ck.enable();
    ck.register_actor(100, 0);
    ck.register_actor(101, 1);
    ck.watch_segment(0, 1);
    // Reading a receive buffer before Wait races with the incoming data —
    // unlike sends, even a load conflicts.
    const std::uint64_t id =
        ck.on_request_issue(1, 0, 1, 0, 128, /*is_send=*/false, 10);
    ASSERT_NE(id, 0u);
    ck.on_segment_access(0, 1, 101, 0, 8, /*store=*/false, 20);
    EXPECT_EQ(ck.count(ViolationKind::request_race), 1u);
}

TEST(CheckerUnit, LoadFromPendingIsendBufferIsAllowed) {
    Checker ck(2);
    ck.enable();
    ck.register_actor(100, 0);
    ck.watch_segment(0, 1);
    // Reading an in-flight *send* buffer is legal (MPI allows concurrent
    // loads of a buffer an Isend is draining).
    ck.on_request_issue(0, 0, 1, 0, 64, /*is_send=*/true, 10);
    ck.on_segment_access(0, 1, 100, 0, 64, /*store=*/false, 20);
    EXPECT_TRUE(ck.violations().empty());
}

TEST(CheckerUnit, ReuseAfterWaitIsOrderedByCompletionEdge) {
    Checker ck(2);
    ck.enable();
    ck.register_actor(100, 0);
    ck.register_actor(101, 1);
    ck.watch_segment(3, 7);
    // Same store as the racy case, but after Wait closed the request: the
    // completion is the happens-before edge that makes the reuse legal.
    const std::uint64_t id = ck.on_request_issue(0, 3, 7, 0, 64, true, 10);
    ck.on_request_complete(0, id, 15);
    ck.on_segment_access(3, 7, 100, 32, 64, true, 20);
    EXPECT_EQ(ck.count(ViolationKind::request_race), 0u);
}

TEST(CheckerUnit, RequestIssueOnUnwatchedSegmentIsIgnored) {
    Checker ck(2);
    ck.enable();
    ck.register_actor(100, 0);
    // No watch_segment: buffers outside the shared arena are invisible, the
    // hook must be a no-op returning the null id.
    EXPECT_EQ(ck.on_request_issue(0, 5, 9, 0, 64, true, 10), 0u);
    ck.on_segment_access(5, 9, 100, 0, 64, true, 20);
    EXPECT_TRUE(ck.violations().empty());
}

TEST(CheckerUnit, RepeatedRaceIsDeduplicatedAndCounted) {
    Checker ck(3);
    ck.enable();
    const std::vector<ByteRange> blk = {{0, 8}};
    ck.on_rma_op(0, /*origin=*/1, /*target=*/0, AccessKind::put, SyncMode::none,
                 blk, 10, 0);
    ck.on_rma_op(0, /*origin=*/2, /*target=*/0, AccessKind::put, SyncMode::none,
                 blk, 20, 0);
    ck.on_rma_op(0, /*origin=*/2, /*target=*/0, AccessKind::put, SyncMode::none,
                 blk, 30, 0);
    // Same (kind, win, ranks, bytes) signature: one diagnostic, the rest
    // only counted as suppressed.
    EXPECT_EQ(ck.count(ViolationKind::put_put_overlap), 1u);
    EXPECT_GE(ck.suppressed(), 1u);
}

}  // namespace
}  // namespace scimpi::mpi
