// Stress tests for the checker's bounded state (DESIGN.md §10): the
// per-window / per-segment access logs cap-and-halve instead of growing
// without bound, distinct violations stop being recorded (only counted) past
// the cap, and the dedup signature suppresses repeat diagnoses of one site —
// including across fence epochs, where the pruned log must not cause a
// previously reported pair to be re-reported.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "check/checker.hpp"

namespace scimpi::check {
namespace {

/// Issue a PSCW-mode put from `origin` on `win` covering [lo, lo+len).
void put(Checker& ck, int win, int origin, std::uint64_t lo, std::uint64_t len,
         SimTime now) {
    ck.on_rma_op(win, origin, /*target=*/0, AccessKind::put, SyncMode::pscw,
                 {{lo, lo + len}}, now, /*track=*/origin);
}

TEST(CheckerStress, WindowLogCapsAndStillDetectsFreshRaces) {
    Checker ck(2);
    ck.enable();
    ck.on_win_create(0, 0, 1_MiB);
    // 20k non-overlapping single-byte puts from rank 0: way past the 8192
    // record cap; the log must halve repeatedly rather than grow unbounded.
    for (std::uint64_t i = 0; i < 20000; ++i) put(ck, 0, 0, i, 1, i);
    EXPECT_TRUE(ck.violations().empty());
    // A conflicting put from rank 1 against a *recent* record must still be
    // caught even after the wraparound dropped the old half of the log.
    put(ck, 0, 1, 19999, 1, 30000);
    ASSERT_EQ(ck.violations().size(), 1u);
    EXPECT_EQ(ck.violations()[0].kind, ViolationKind::put_put_overlap);
    EXPECT_EQ(ck.violations()[0].range.lo, 19999u);
}

TEST(CheckerStress, WindowLogWraparoundForgetsTheOldestHalfOnly) {
    Checker ck(2);
    ck.enable();
    ck.on_win_create(0, 0, 1_MiB);
    for (std::uint64_t i = 0; i < 20000; ++i) put(ck, 0, 0, i, 1, i);
    // Offset 0 was logged first and has long been dropped by the halving:
    // a conflicting access there goes unreported. This pins the bounded-log
    // tradeoff so a future change to the policy shows up as a test diff.
    put(ck, 0, 1, 0, 1, 30001);
    EXPECT_TRUE(ck.violations().empty());
}

TEST(CheckerStress, DistinctViolationsCapAtLimitAndCountTheRest) {
    Checker ck(2);
    ck.enable();
    ck.on_win_create(0, 0, 16_MiB);
    // 1500 distinct racing byte ranges: 1024 recorded, the rest suppressed.
    for (std::uint64_t i = 0; i < 1500; ++i) {
        put(ck, 0, 0, 2 * i, 1, 2 * i);
        put(ck, 0, 1, 2 * i, 1, 2 * i + 1);
    }
    EXPECT_EQ(ck.violations().size(), 1024u);
    EXPECT_EQ(ck.suppressed(), 1500u - 1024u);
    // The report header carries both numbers.
    const std::string rep = ck.report_string();
    EXPECT_NE(rep.find("1024 violations detected"), std::string::npos) << rep;
    EXPECT_NE(rep.find("476 further occurrences suppressed"), std::string::npos)
        << rep;
}

TEST(CheckerStress, SameSiteRaceIsReportedOnceAndSuppressedAfter) {
    Checker ck(2);
    ck.enable();
    ck.on_win_create(0, 0, 4_KiB);
    for (int rep = 0; rep < 100; ++rep) {
        put(ck, 0, 0, 64, 8, 1000 + 2 * rep);
        put(ck, 0, 1, 64, 8, 1001 + 2 * rep);
    }
    // The dedup signature is direction-sensitive: the site is reported once
    // per (earlier rank, later rank) ordering, then everything is suppressed.
    EXPECT_EQ(ck.violations().size(), 2u);
    EXPECT_GE(ck.suppressed(), 98u);
    EXPECT_EQ(ck.count(ViolationKind::put_put_overlap), 2u);
}

TEST(CheckerStress, DedupSurvivesFenceEpochPruning) {
    // Same conflicting pair re-issued in later fence epochs: pruning drops
    // the stale records, but the dedup signature (kind, win, ranks, range)
    // still suppresses the repeat diagnosis instead of re-reporting it.
    Checker ck(2);
    ck.enable();
    ck.on_win_create(0, 0, 4_KiB);
    SimTime t = 0;
    for (int epoch = 0; epoch < 5; ++epoch) {
        ck.on_fence(0, 0, t, 0);
        ck.on_fence(0, 1, t + 1, 1);
        t += 10;
        ck.on_rma_op(0, 0, 0, AccessKind::put, SyncMode::fence, {{64, 72}}, t++, 0);
        ck.on_rma_op(0, 1, 0, AccessKind::put, SyncMode::fence, {{64, 72}}, t++, 1);
    }
    // One diagnostic per direction of the pair; every later epoch's re-race
    // only bumps the suppression counter even though pruning dropped the
    // records the original diagnosis was made from.
    EXPECT_EQ(ck.violations().size(), 2u);
    EXPECT_GE(ck.suppressed(), 8u);
}

TEST(CheckerStress, SegmentLogCapsAndStillDetectsFreshRaces) {
    Checker ck(2);
    ck.enable();
    ck.register_actor(/*track=*/10, /*world_rank=*/0);
    ck.register_actor(/*track=*/11, /*world_rank=*/1);
    ck.watch_segment(0, 7);
    for (std::uint64_t i = 0; i < 20000; ++i)
        ck.on_segment_access(0, 7, /*track=*/10, i, 1, /*is_store=*/true, i);
    EXPECT_TRUE(ck.violations().empty());
    ck.on_segment_access(0, 7, /*track=*/11, 19999, 1, true, 30000);
    ASSERT_EQ(ck.violations().size(), 1u);
    EXPECT_EQ(ck.violations()[0].kind, ViolationKind::segment_race);
}

TEST(CheckerStress, SignatureIsStableAndOrdered) {
    Checker ck(2);
    ck.enable();
    ck.on_win_create(0, 0, 4_KiB);
    put(ck, 0, 0, 0, 8, 1);
    put(ck, 0, 1, 0, 8, 2);
    put(ck, 0, 0, 100, 4, 3);
    put(ck, 0, 1, 100, 4, 4);
    const std::string sig = ck.signature();
    // One line per recorded violation, in recording order.
    EXPECT_EQ(sig,
              "put_put_overlap:0:0:1:0:8\n"
              "put_put_overlap:0:0:1:100:104\n");
    // report_string is deterministic for identical input.
    Checker ck2(2);
    ck2.enable();
    ck2.on_win_create(0, 0, 4_KiB);
    put(ck2, 0, 0, 0, 8, 1);
    put(ck2, 0, 1, 0, 8, 2);
    put(ck2, 0, 0, 100, 4, 3);
    put(ck2, 0, 1, 100, 4, 4);
    EXPECT_EQ(ck.report_string(), ck2.report_string());
    EXPECT_EQ(ck.signature(), ck2.signature());
}

}  // namespace
}  // namespace scimpi::check
