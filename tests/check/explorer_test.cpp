#include "check/explorer.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/status.hpp"
#include "sim/engine.hpp"
#include "sim/process.hpp"
#include "sim/schedule.hpp"
#include "sim/sync.hpp"

namespace scimpi::check {
namespace {

using sim::Engine;
using sim::Process;

/// A two-process order-dependent bug: the default FIFO schedule runs "a"
/// before "b" and is clean; any schedule that runs "b" first is a violation.
RunOutcome order_bug(sim::ScheduleController& ctrl) {
    Engine eng;
    eng.set_schedule_controller(&ctrl);
    std::vector<std::string> order;
    eng.spawn("a", [&](Process&) {
        sim::note_subject(&order);
        order.push_back("a");
    });
    eng.spawn("b", [&](Process&) {
        sim::note_subject(&order);
        order.push_back("b");
    });
    eng.run();
    RunOutcome out;
    if (order.front() == "b") {
        out.violation = true;
        out.report = "b overtook a\n";
        out.signature = "order:b<a";
    }
    return out;
}

TEST(Explorer, FindsAnOrderDependentViolation) {
    ExploreOptions opt;
    opt.fuzz = 0;  // the t=0 spawn tie is the only choice point
    const ExploreResult res = explore(order_bug, opt);
    ASSERT_TRUE(res.found);
    EXPECT_TRUE(res.finding.violation);
    EXPECT_EQ(res.finding.signature, "order:b<a");
    EXPECT_GE(res.schedules, 2u);  // the clean default run plus the finding

    // The emitted trace replays to the byte-identical outcome.
    sim::ReplayController rc(res.trace);
    const RunOutcome again = order_bug(rc);
    EXPECT_TRUE(again.violation);
    EXPECT_EQ(again.report, res.finding.report);
    EXPECT_EQ(again.signature, res.finding.signature);
}

TEST(Explorer, ExhaustsACleanProgram) {
    const RunFn clean = [](sim::ScheduleController& ctrl) {
        Engine eng;
        eng.set_schedule_controller(&ctrl);
        int shared = 0;
        eng.spawn("a", [&](Process& p) {
            sim::note_subject(&shared);
            ++shared;
            p.delay(10);
        });
        eng.spawn("b", [&](Process& p) {
            sim::note_subject(&shared);
            ++shared;
            p.delay(20);
        });
        eng.run();
        return RunOutcome{};
    };
    ExploreOptions opt;
    opt.fuzz = 100;
    const ExploreResult res = explore(clean, opt);
    EXPECT_FALSE(res.found);
    EXPECT_TRUE(res.exhausted);
    EXPECT_GE(res.schedules, 2u);  // at least both orders of the spawn tie
}

TEST(Explorer, RespectsTheScheduleBudget) {
    // Ten processes all tied at t=0: far more interleavings than the budget.
    const RunFn wide = [](sim::ScheduleController& ctrl) {
        Engine eng;
        eng.set_schedule_controller(&ctrl);
        for (int i = 0; i < 10; ++i)
            eng.spawn("p" + std::to_string(i), [](Process&) {});
        eng.run();
        return RunOutcome{};
    };
    ExploreOptions opt;
    opt.fuzz = 0;
    opt.dpor = false;
    opt.max_schedules = 5;
    const ExploreResult res = explore(wide, opt);
    EXPECT_FALSE(res.found);
    EXPECT_FALSE(res.exhausted);
    EXPECT_LE(res.schedules, 5u);
}

TEST(Explorer, ConvertsAPanicIntoADeadlockFinding) {
    // "b" first deadlocks: it waits for a mailbox item that only "a" sends,
    // and "a" only sends after "b" has signalled back — but in the flipped
    // order "b" parks before "a" was spawned-scheduled... Simplest stand-in:
    // panic explicitly when the perturbed order shows up.
    const RunFn bomb = [](sim::ScheduleController& ctrl) {
        Engine eng;
        eng.set_schedule_controller(&ctrl);
        std::vector<std::string> order;
        eng.spawn("a", [&](Process&) {
            sim::note_subject(&order);
            order.push_back("a");
        });
        eng.spawn("b", [&](Process&) {
            sim::note_subject(&order);
            order.push_back("b");
            if (order.front() == "b") panic("order bomb");
        });
        eng.run();
        return RunOutcome{};
    };
    ExploreOptions opt;
    opt.fuzz = 0;
    const ExploreResult res = explore(bomb, opt);
    ASSERT_TRUE(res.found);
    EXPECT_TRUE(res.finding.deadlock);
    EXPECT_NE(res.finding.report.find("order bomb"), std::string::npos);
}

/// Two independent pairs of processes; within each pair both processes touch
/// the pair's shared subject, across pairs nothing is shared. Only the
/// relative order inside a pair matters, so DPOR should refuse to explore
/// cross-pair reorderings that naive DFS enumerates blindly.
RunOutcome two_pairs(sim::ScheduleController& ctrl) {
    Engine eng;
    eng.set_schedule_controller(&ctrl);
    int subject_a = 0;
    int subject_b = 0;
    for (int i = 0; i < 2; ++i) {
        eng.spawn("p" + std::to_string(i), [&](Process&) {
            sim::note_subject(&subject_a);
            ++subject_a;
        });
        eng.spawn("q" + std::to_string(i), [&](Process&) {
            sim::note_subject(&subject_b);
            ++subject_b;
        });
    }
    eng.run();
    return RunOutcome{};
}

TEST(Explorer, DporExploresFewerSchedulesThanNaiveDfs) {
    ExploreOptions naive;
    naive.fuzz = 0;
    naive.dpor = false;
    naive.max_schedules = 10000;
    const ExploreResult rn = explore(two_pairs, naive);
    ASSERT_TRUE(rn.exhausted);

    ExploreOptions dpor;
    dpor.fuzz = 0;
    dpor.dpor = true;
    dpor.max_schedules = 10000;
    const ExploreResult rd = explore(two_pairs, dpor);
    ASSERT_TRUE(rd.exhausted);

    // The acceptance bar: DPOR visits measurably fewer schedules. Naive DFS
    // enumerates every interleaving of the four t=0-tied processes; DPOR only
    // backtracks where footprints actually conflict.
    EXPECT_LT(rd.schedules, rn.schedules);
    EXPECT_GT(rd.pruned, 0u);
    EXPECT_FALSE(rn.found);
    EXPECT_FALSE(rd.found);
}

TEST(Explorer, MinimizedTraceDropsIrrelevantDecisions) {
    // Three processes: only "c" overtaking "a" matters; the b/a order is
    // noise. Whatever path the DFS took to the finding, the minimized trace
    // must reproduce the same signature when replayed.
    const RunFn noisy = [](sim::ScheduleController& ctrl) {
        Engine eng;
        eng.set_schedule_controller(&ctrl);
        std::vector<std::string> order;
        eng.spawn("a", [&](Process&) {
            sim::note_subject(&order);
            order.push_back("a");
        });
        eng.spawn("b", [&](Process&) {
            sim::note_subject(&order);
            order.push_back("b");
        });
        eng.spawn("c", [&](Process&) {
            sim::note_subject(&order);
            order.push_back("c");
        });
        eng.run();
        RunOutcome out;
        for (const std::string& s : order) {
            if (s == "a") break;
            if (s == "c") {
                out.violation = true;
                out.report = "c overtook a\n";
                out.signature = "order:c<a";
                break;
            }
        }
        return out;
    };
    ExploreOptions opt;
    opt.fuzz = 0;
    const ExploreResult res = explore(noisy, opt);
    ASSERT_TRUE(res.found);
    sim::ReplayController rc(res.trace);
    const RunOutcome again = noisy(rc);
    EXPECT_TRUE(again.violation);
    EXPECT_EQ(again.signature, "order:c<a");
    // Minimization keeps the trace to the decisions that matter: flipping
    // one dispatch choice suffices to put "c" ahead of "a".
    EXPECT_LE(res.trace.decisions.size(), 2u);
}

TEST(Explorer, CountersLandInTheRegistry) {
    obs::MetricsRegistry m;
    m.enable(true);
    ExploreOptions opt;
    opt.fuzz = 0;
    opt.metrics = &m;
    (void)explore(order_bug, opt);
    bool saw_schedules = false;
    for (const auto& [name, value] : m.counters()) {
        if (name == "explore.schedules") {
            saw_schedules = true;
            EXPECT_GE(value, 2u);
        }
    }
    EXPECT_TRUE(saw_schedules);
}

}  // namespace
}  // namespace scimpi::check
