#!/usr/bin/env bash
# Lint gate over src/ (wired into the `lint` CMake target and the verify
# flow). Uses clang-tidy with the repo .clang-tidy when available; on boxes
# without clang (like the reference container, which only ships g++) it
# falls back to a strict-warning g++ -fsyntax-only pass over every
# translation unit so the gate never silently no-ops.
#
# Env: BUILD_DIR (default: build) — where compile_commands.json lives.
set -u

cd "$(dirname "$0")/.."
BUILD_DIR="${BUILD_DIR:-build}"

sources=$(find src -name '*.cpp' | sort)
[ -n "$sources" ] || { echo "lint: no sources found under src/" >&2; exit 1; }

if command -v clang-tidy >/dev/null 2>&1 && [ -f "$BUILD_DIR/compile_commands.json" ]; then
    echo "lint: clang-tidy ($(clang-tidy --version | head -n1))"
    # shellcheck disable=SC2086
    clang-tidy -p "$BUILD_DIR" --quiet $sources
    exit $?
fi

echo "lint: clang-tidy unavailable; strict g++ -fsyntax-only fallback"
CXX="${CXX:-g++}"
FLAGS="-std=c++20 -Isrc -fsyntax-only -Wall -Wextra -Wpedantic -Wshadow
       -Wnon-virtual-dtor -Wcast-align -Woverloaded-virtual -Wunused
       -Wconversion-null -Wdouble-promotion -Wformat=2 -Wimplicit-fallthrough
       -Wmissing-declarations -Wredundant-decls -Wswitch-enum -Werror"
# Strict zone: the engine and the checker/explorer are the layers where a
# silent narrowing or qualifier drop can corrupt a schedule decision or a
# vector clock, so they carry every extra diagnostic g++ offers. New
# warnings here fail the gate outright.
STRICT_FLAGS="-Wconversion -Wsign-conversion -Wcast-qual -Wlogical-op
              -Wduplicated-cond -Wduplicated-branches"
fail=0
for f in $sources; do
    extra=""
    case "$f" in
        src/sim/*|src/check/*) extra="$STRICT_FLAGS" ;;
    esac
    # shellcheck disable=SC2086
    if ! "$CXX" $FLAGS $extra "$f"; then
        fail=1
        echo "lint: FAIL $f" >&2
    fi
done
if [ "$fail" -ne 0 ]; then
    echo "lint: failures detected" >&2
    exit 1
fi
echo "lint: clean ($(echo "$sources" | wc -l) files)"
