#!/usr/bin/env python3
"""Diff two RunReport v4 JSON files metric-by-metric.

Usage:
    bench_compare.py BASELINE.json CANDIDATE.json... [options]

Both inputs may be either a bare RunReport (the SCIMPI_STATS_FILE /
stats_report() document) or a bench wrapper like bench_scale --json output
({"bench": ..., "runs": [{"label": ..., "report": {...}}]}); runs are
matched by label. Several candidate files union their runs, so one baseline
can gate multiple bench binaries at once.

Metrics (or whole runs) present in the candidate but absent from the
baseline are reported as "new" — informational only, never an error — so
adding instrumentation or a new bench does not trip the gate; only the
baseline refresh records them.

For every extracted metric the relative change against the baseline is
computed and classified by direction:

  lower-is-better   *_ns, *latency*, wall_per_sim_second, sim_time_ns, ...
  higher-is-better  *per_sec*, *goodput*, *bandwidth*
  neutral           everything else (counters, queue depths): any change
                    beyond the threshold is flagged both ways

Wall-clock-derived metrics (wall_ns, events_per_sec_wall,
wall_per_sim_second, ts.sim.wall* / ts.sim.events_per_sec_wall*) are
host-dependent and skipped unless --include-wall is given, so a checked-in
baseline stays comparable across machines. Everything simulated is
bit-deterministic: a clean re-run diffs to zero.

Exit status: 0 = no regression, 1 = at least one metric breached its
threshold, 2 = usage/parse error.
"""

import argparse
import json
import sys

# Metrics whose absolute value is tiny rounding fodder are ignored below
# this floor to avoid 0-vs-epsilon false alarms.
ABS_FLOOR = 1e-12

WALL_METRICS = ("wall_ns", "events_per_sec_wall", "wall_per_sim_second")


def is_wall_metric(name):
    short = name.split(".", 1)[-1] if name.startswith("ts.") else name
    return any(w in short for w in WALL_METRICS) or short.startswith("sim.wall")


def direction(name):
    """-1 = lower is better, +1 = higher is better, 0 = neutral."""
    n = name.lower()
    if any(k in n for k in ("per_sec", "per_sim_sec", "goodput", "bandwidth")):
        return 1
    if any(k in n for k in ("_ns", "latency", "wall_per_sim", "sim_time",
                            "sim_seconds", ".p50", ".p90", ".p99")):
        return -1
    return 0


def summarize_series(ts):
    """Reduce one timeseries object to mean/max scalars."""
    v = ts.get("v", [])
    if not v:
        return {}
    name = ts.get("name", "?")
    return {
        f"ts.{name}.mean": sum(v) / len(v),
        f"ts.{name}.max": max(v),
    }


def extract_metrics(report):
    """Flatten one RunReport into {metric_name: float}."""
    out = {}
    for key in ("sim_time_ns", "events_dispatched", "wall_ns",
                "events_per_sec_wall", "wall_per_sim_second"):
        if key in report:
            out[key] = float(report[key])
    for name, val in report.get("counters", {}).items():
        out[f"counters.{name}"] = float(val)
    for name, val in report.get("gauges", {}).items():
        out[f"gauges.{name}"] = float(val)
    for name, h in report.get("histograms", {}).items():
        for field in ("count", "p50", "p99"):
            if field in h:
                out[f"histograms.{name}.{field}"] = float(h[field])
    for ts in report.get("timeseries", []):
        out.update(summarize_series(ts))
    return out


def load_runs(path):
    """-> {run_label: {metric: value}}; bare reports get label ''. """
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        sys.stderr.write(f"bench_compare: cannot read {path}: {e}\n")
        sys.exit(2)
    if "runs" in doc:
        runs = {}
        for i, run in enumerate(doc["runs"]):
            label = run.get("label", f"run{i}")
            report = run.get("report", run)
            runs[label] = extract_metrics(report)
        return runs
    if "schema_version" in doc:
        return {"": extract_metrics(doc)}
    sys.stderr.write(f"bench_compare: {path} is neither a RunReport nor a "
                     "bench wrapper (no schema_version / runs)\n")
    sys.exit(2)


def parse_overrides(pairs):
    out = {}
    for p in pairs or []:
        name, _, pct = p.partition("=")
        try:
            out[name] = float(pct)
        except ValueError:
            sys.stderr.write(f"bench_compare: bad --metric override '{p}'\n")
            sys.exit(2)
    return out


def main():
    ap = argparse.ArgumentParser(
        description="Diff two RunReport v4 JSON files; nonzero exit on "
                    "regression beyond threshold.")
    ap.add_argument("baseline")
    ap.add_argument("candidate", nargs="+",
                    help="one or more candidate files; runs are unioned")
    ap.add_argument("--threshold", type=float, default=20.0,
                    help="allowed regression in percent (default 20)")
    ap.add_argument("--metric", action="append", metavar="NAME=PCT",
                    help="per-metric threshold override (substring match)")
    ap.add_argument("--include-wall", action="store_true",
                    help="also compare host-wall-clock-derived metrics")
    ap.add_argument("--verbose", "-v", action="store_true",
                    help="print every compared metric, not just breaches")
    args = ap.parse_args()

    base_runs = load_runs(args.baseline)
    cand_runs = {}
    for path in args.candidate:
        for label, metrics in load_runs(path).items():
            if label in cand_runs:
                sys.stderr.write(f"bench_compare: duplicate run label "
                                 f"'{label}' across candidates\n")
                sys.exit(2)
            cand_runs[label] = metrics
    overrides = parse_overrides(args.metric)

    breaches = []
    vanished = []
    compared = 0
    new_metrics = 0
    for label, base in sorted(base_runs.items()):
        cand = cand_runs.get(label)
        if cand is None:
            breaches.append((label, "<run missing>", 0.0, 0.0, 100.0))
            continue
        for name, b in sorted(base.items()):
            if not args.include_wall and is_wall_metric(name):
                continue
            c = cand.get(name)
            if c is None:
                # A metric that vanished is suspicious only if it was real;
                # a zero-valued one still gets a warning rather than a
                # silent drop, so a renamed counter cannot disappear from
                # the gate unnoticed.
                if abs(b) > ABS_FLOOR:
                    breaches.append((label, name + " <missing>", b, 0.0, 100.0))
                else:
                    vanished.append((label, name, b))
                continue
            compared += 1
            if abs(b) <= ABS_FLOOR and abs(c) <= ABS_FLOOR:
                continue
            if abs(b) <= ABS_FLOOR:
                change = 100.0
            else:
                change = (c - b) / abs(b) * 100.0
            threshold = args.threshold
            for pat, pct in overrides.items():
                if pat in name:
                    threshold = pct
            d = direction(name)
            if d > 0:
                regressed = change < -threshold
            elif d < 0:
                regressed = change > threshold
            else:
                regressed = abs(change) > threshold
            tag = "REGRESSION" if regressed else "ok"
            if args.verbose or regressed:
                prefix = f"{label}:" if label else ""
                print(f"{tag:>10}  {prefix}{name}: {b:.6g} -> {c:.6g} "
                      f"({change:+.1f}%, threshold {threshold:g}%)")
            if regressed:
                breaches.append((label, name, b, c, change))

    # Candidate-only runs/metrics: informational, never an error — a fresh
    # bench or new instrumentation waits for the next baseline refresh.
    for label, cand in sorted(cand_runs.items()):
        base = base_runs.get(label, {})
        fresh = sorted(set(cand) - set(base))
        new_metrics += len(fresh)
        if args.verbose:
            prefix = f"{label}:" if label else ""
            if label not in base_runs:
                print(f"{'new run':>10}  {prefix} not in baseline "
                      f"({len(fresh)} metrics)")
            else:
                for name in fresh:
                    print(f"{'new':>10}  {prefix}{name} = {cand[name]:.6g} "
                          "(not in baseline)")

    for label, name, b in vanished:
        prefix = f"{label}:" if label else ""
        sys.stderr.write(f"bench_compare: warning: baseline metric "
                         f"{prefix}{name} ({b:.6g}) is missing from every "
                         f"candidate\n")

    print(f"bench_compare: {compared} metrics compared, "
          f"{len(breaches)} regression(s), {new_metrics} new metric(s), "
          f"{len(vanished)} vanished zero-valued metric(s)")
    return 1 if breaches else 0


if __name__ == "__main__":
    sys.exit(main())
