// scimpi-analyze: offline bottleneck diagnosis over a causal event log
// (SCIMPI_EVLOG / ClusterOptions::evlog; format in DESIGN.md §14).
//
//   scimpi-analyze RUN.evlog                 breakdown + matrix + top-K
//   scimpi-analyze --json RUN.evlog          same, machine-readable
//   scimpi-analyze --diff B.evlog A.evlog    A (candidate) vs B (baseline)
//   scimpi-analyze --top 10 RUN.evlog        widen the blamed-links/ranks list
//   scimpi-analyze --force HUGE.evlog        lift the 1 GiB input guard
//
// The critical path is extracted by the same obs::critical_path() pass the
// runtime uses for RunReport schema v5, so the numbers here match the
// `critical_path` section of a run's JSON report and the "critical path"
// overlay track of its Chrome trace.
#include <algorithm>
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <sys/stat.h>
#include <vector>

#include "obs/evgraph.hpp"

namespace {

using scimpi::Result;
using scimpi::SimTime;
using scimpi::Status;
using scimpi::obs::CriticalPath;
using scimpi::obs::EvCat;
using scimpi::obs::EventGraph;
using scimpi::obs::EvLogLoaded;
using scimpi::obs::EvMsgCell;
using scimpi::obs::kEvCats;

constexpr std::uint64_t kMaxLogBytes = 1ull << 30;  // refuse above without --force

struct Options {
    std::string log;       // candidate (or the only) log
    std::string baseline;  // --diff
    bool json = false;
    bool force = false;
    int top = 5;
};

int usage(const char* argv0) {
    std::fprintf(stderr,
                 "usage: %s [--json] [--top K] [--force] [--diff BASELINE.evlog] "
                 "RUN.evlog\n",
                 argv0);
    return 2;
}

/// A loaded log plus its extracted critical path.
struct Analysis {
    EvLogLoaded log;
    CriticalPath cp;
};

Result<Analysis> analyze(const std::string& path, bool force) {
    struct stat st{};
    if (::stat(path.c_str(), &st) != 0)
        return Status::error(scimpi::Errc::io_error, "cannot stat " + path);
    if (static_cast<std::uint64_t>(st.st_size) > kMaxLogBytes && !force)
        return Status::error(
            scimpi::Errc::invalid_argument,
            path + " is larger than 1 GiB; pass --force to analyze anyway, or "
                   "re-run with SCIMPI_EVLOG_CAP to decimate the log at the "
                   "source");
    auto loaded = EventGraph::load_jsonl(path);
    if (!loaded) return loaded.status();
    Analysis a{std::move(loaded).value(), {}};
    a.cp = scimpi::obs::critical_path(
        a.log.graph, static_cast<SimTime>(a.log.sim_time_ns));
    return a;
}

double pct(std::uint64_t part, std::uint64_t total) {
    return total == 0 ? 0.0 : 100.0 * static_cast<double>(part) /
                                  static_cast<double>(total);
}

/// Category nanoseconds in serialization order, densely indexed.
std::array<std::uint64_t, kEvCats> cat_row(const CriticalPath& cp) {
    return cp.cat_ns;
}

template <typename K>
std::vector<std::pair<K, std::uint64_t>> top_k(
    const std::map<K, std::uint64_t>& m, int k) {
    std::vector<std::pair<K, std::uint64_t>> v(m.begin(), m.end());
    std::sort(v.begin(), v.end(),
              [](const auto& x, const auto& y) { return x.second > y.second; });
    if (static_cast<int>(v.size()) > k) v.resize(static_cast<std::size_t>(k));
    return v;
}

void print_human(const std::string& path, const Analysis& a, int top) {
    const CriticalPath& cp = a.cp;
    std::printf("log: %s\n", path.c_str());
    std::printf("world: %d ranks   sim_time: %" PRIu64 " ns   nodes: %zu   %s\n",
                a.log.world, a.log.sim_time_ns, a.log.graph.nodes().size(),
                a.log.truncated ? "TRUNCATED (no trailer; partial run)"
                                : "complete");
    std::printf("\ncritical path (%zu steps, %" PRIu64 " ns attributed)\n",
                cp.steps, cp.total_ns);
    std::printf("  %-12s %15s %8s\n", "category", "ns", "%");
    for (int i = 0; i < kEvCats; ++i) {
        const auto c = static_cast<EvCat>(i);
        if (cp.category(c) == 0) continue;
        std::printf("  %-12s %15" PRIu64 " %7.2f%%\n", scimpi::obs::ev_cat_name(c),
                    cp.category(c), pct(cp.category(c), cp.total_ns));
    }
    if (!cp.link_ns.empty()) {
        std::printf("\ntop blamed links (SCI node pairs)\n");
        for (const auto& [link, ns] : top_k(cp.link_ns, top))
            std::printf("  %-12s %15" PRIu64 " %7.2f%%\n", link.c_str(), ns,
                        pct(ns, cp.total_ns));
    }
    if (!cp.rank_ns.empty()) {
        std::printf("\ntop blamed ranks\n");
        for (const auto& [rank, ns] : top_k(cp.rank_ns, top))
            std::printf("  rank %-7d %15" PRIu64 " %7.2f%%\n", rank, ns,
                        pct(ns, cp.total_ns));
    }
    const std::vector<EvMsgCell> cells = a.log.graph.messages();
    if (!cells.empty()) {
        std::printf("\ncommunication matrix (src -> dst)\n");
        std::printf("  %4s %4s %10s %14s %14s\n", "src", "dst", "msgs", "bytes",
                    "mean lat ns");
        for (const EvMsgCell& c : cells)
            std::printf("  %4d %4d %10" PRIu64 " %14" PRIu64 " %14" PRIu64 "\n",
                        c.src, c.dst, c.msgs, c.bytes,
                        c.msgs == 0 ? 0 : c.lat_sum_ns / c.msgs);
    }
}

void print_json(const std::string& path, const Analysis& a, int top) {
    const CriticalPath& cp = a.cp;
    std::printf("{\n  \"log\": \"%s\",\n  \"world\": %d,\n", path.c_str(),
                a.log.world);
    std::printf("  \"sim_time_ns\": %" PRIu64 ",\n  \"truncated\": %s,\n",
                a.log.sim_time_ns, a.log.truncated ? "true" : "false");
    std::printf("  \"critical_path\": {\n    \"total_ns\": %" PRIu64
                ",\n    \"steps\": %zu,\n    \"categories\": {",
                cp.total_ns, cp.steps);
    bool first = true;
    for (int i = 0; i < kEvCats; ++i) {
        const auto c = static_cast<EvCat>(i);
        if (cp.category(c) == 0) continue;
        std::printf("%s\"%s\": %" PRIu64, first ? "" : ", ",
                    scimpi::obs::ev_cat_name(c), cp.category(c));
        first = false;
    }
    std::printf("},\n    \"links\": {");
    first = true;
    for (const auto& [link, ns] : top_k(cp.link_ns, top)) {
        std::printf("%s\"%s\": %" PRIu64, first ? "" : ", ", link.c_str(), ns);
        first = false;
    }
    std::printf("},\n    \"ranks\": {");
    first = true;
    for (const auto& [rank, ns] : top_k(cp.rank_ns, top)) {
        std::printf("%s\"%d\": %" PRIu64, first ? "" : ", ", rank, ns);
        first = false;
    }
    std::printf("}\n  },\n  \"matrix\": [");
    first = true;
    for (const EvMsgCell& c : a.log.graph.messages()) {
        std::printf("%s\n    {\"src\": %d, \"dst\": %d, \"msgs\": %" PRIu64
                    ", \"bytes\": %" PRIu64 ", \"mean_latency_ns\": %" PRIu64 "}",
                    first ? "" : ",", c.src, c.dst, c.msgs, c.bytes,
                    c.msgs == 0 ? 0 : c.lat_sum_ns / c.msgs);
        first = false;
    }
    std::printf("%s]\n}\n", first ? "" : "\n  ");
}

void print_diff(const std::string& base_path, const Analysis& base,
                const std::string& cand_path, const Analysis& cand, bool json) {
    const auto b = cat_row(base.cp);
    const auto c = cat_row(cand.cp);
    if (json) {
        std::printf("{\n  \"baseline\": \"%s\",\n  \"candidate\": \"%s\",\n",
                    base_path.c_str(), cand_path.c_str());
        std::printf("  \"baseline_total_ns\": %" PRIu64
                    ",\n  \"candidate_total_ns\": %" PRIu64
                    ",\n  \"delta_ns\": %" PRId64 ",\n  \"categories\": {",
                    base.cp.total_ns, cand.cp.total_ns,
                    static_cast<std::int64_t>(cand.cp.total_ns) -
                        static_cast<std::int64_t>(base.cp.total_ns));
        bool first = true;
        for (int i = 0; i < kEvCats; ++i) {
            if (b[static_cast<std::size_t>(i)] == 0 &&
                c[static_cast<std::size_t>(i)] == 0)
                continue;
            std::printf(
                "%s\n    \"%s\": {\"baseline_ns\": %" PRIu64
                ", \"candidate_ns\": %" PRIu64 ", \"delta_ns\": %" PRId64 "}",
                first ? "" : ",",
                scimpi::obs::ev_cat_name(static_cast<EvCat>(i)),
                b[static_cast<std::size_t>(i)], c[static_cast<std::size_t>(i)],
                static_cast<std::int64_t>(c[static_cast<std::size_t>(i)]) -
                    static_cast<std::int64_t>(b[static_cast<std::size_t>(i)]));
            first = false;
        }
        std::printf("\n  }\n}\n");
        return;
    }
    std::printf("baseline:  %s  (%" PRIu64 " ns)\n", base_path.c_str(),
                base.cp.total_ns);
    std::printf("candidate: %s  (%" PRIu64 " ns)\n", cand_path.c_str(),
                cand.cp.total_ns);
    const auto total_delta = static_cast<std::int64_t>(cand.cp.total_ns) -
                             static_cast<std::int64_t>(base.cp.total_ns);
    std::printf("end-to-end delta: %+" PRId64 " ns (%+.2f%%)\n\n", total_delta,
                base.cp.total_ns == 0
                    ? 0.0
                    : 100.0 * static_cast<double>(total_delta) /
                          static_cast<double>(base.cp.total_ns));
    std::printf("  %-12s %15s %15s %15s\n", "category", "baseline ns",
                "candidate ns", "delta ns");
    for (int i = 0; i < kEvCats; ++i) {
        const auto bi = b[static_cast<std::size_t>(i)];
        const auto ci = c[static_cast<std::size_t>(i)];
        if (bi == 0 && ci == 0) continue;
        std::printf("  %-12s %15" PRIu64 " %15" PRIu64 " %+15" PRId64 "\n",
                    scimpi::obs::ev_cat_name(static_cast<EvCat>(i)), bi, ci,
                    static_cast<std::int64_t>(ci) - static_cast<std::int64_t>(bi));
    }
    // Where did the difference land? The largest category movers tell the
    // pack-strategy (or fault-retry) story at a glance.
    int worst = -1;
    std::uint64_t worst_abs = 0;
    for (int i = 0; i < kEvCats; ++i) {
        const auto d = static_cast<std::int64_t>(c[static_cast<std::size_t>(i)]) -
                       static_cast<std::int64_t>(b[static_cast<std::size_t>(i)]);
        const auto ad = static_cast<std::uint64_t>(d < 0 ? -d : d);
        if (ad > worst_abs) {
            worst_abs = ad;
            worst = i;
        }
    }
    if (worst >= 0)
        std::printf("\nlargest mover: %s (%+" PRId64 " ns)\n",
                    scimpi::obs::ev_cat_name(static_cast<EvCat>(worst)),
                    static_cast<std::int64_t>(c[static_cast<std::size_t>(worst)]) -
                        static_cast<std::int64_t>(b[static_cast<std::size_t>(worst)]));
}

}  // namespace

int main(int argc, char** argv) {
    Options opt;
    std::vector<std::string> positional;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--json") {
            opt.json = true;
        } else if (arg == "--force") {
            opt.force = true;
        } else if (arg == "--top") {
            if (++i >= argc) return usage(argv[0]);
            opt.top = std::atoi(argv[i]);
            if (opt.top <= 0) return usage(argv[0]);
        } else if (arg == "--diff") {
            if (++i >= argc) return usage(argv[0]);
            opt.baseline = argv[i];
        } else if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
            return usage(argv[0]);
        } else {
            positional.push_back(arg);
        }
    }
    if (positional.size() != 1) return usage(argv[0]);
    opt.log = positional[0];

    auto cand = analyze(opt.log, opt.force);
    if (!cand) {
        std::fprintf(stderr, "scimpi-analyze: %s\n",
                     cand.status().to_string().c_str());
        return 1;
    }
    if (opt.baseline.empty()) {
        if (opt.json)
            print_json(opt.log, cand.value(), opt.top);
        else
            print_human(opt.log, cand.value(), opt.top);
        return 0;
    }
    auto base = analyze(opt.baseline, opt.force);
    if (!base) {
        std::fprintf(stderr, "scimpi-analyze: %s\n",
                     base.status().to_string().c_str());
        return 1;
    }
    print_diff(opt.baseline, base.value(), opt.log, cand.value(), opt.json);
    return 0;
}
